//! The volume: N adaptive drivers behind one block address space.
//!
//! [`ArrayVolume`] mirrors the `AdaptiveDriver` submit/complete surface
//! so the experiment loop drives a volume exactly like a single disk.
//! Incoming requests are mapped through the [`StripeMap`]
//! (single-block requests land wholly on one disk; the raw path splits
//! multi-block transfers into per-disk sub-requests), and completions
//! are merged back in simulated-time order.
//!
//! # Redundancy
//!
//! With a [`Redundancy`] scheme the volume also maintains copies
//! (mirror) or rotated parity (rotparity) and survives one whole-disk
//! failure without losing a block:
//!
//! * **Writes** fan out at submit time with *computed payloads*: the
//!   mirror copy carries the same bytes, the parity update carries
//!   `parity ⊕ old ⊕ new` (old data and old parity come from
//!   [`AdaptiveDriver::peek`], the simulator's stand-in for cache-
//!   resident data). The data write is issued first, then the
//!   copy/parity write — on a crash the scrub repairs toward the data
//!   copy, so the ordering is the crash-consistency contract.
//! * **Reads** route around unavailable members at submit time (dead
//!   or failed disk, un-resilvered block, lost block, latent defect)
//!   and fail over at completion time if the member died with the read
//!   in flight: a mirror read retries on the partner, a parity read
//!   becomes reconstruction reads over the surviving row.
//! * **Resilvering** is tracked per disk as a `stale` set of disk
//!   blocks whose on-disk bytes no longer match the volume's logical
//!   contents (writes redirected while the member was down, or a blank
//!   replacement drive). The rebuild engine drains stale sets under a
//!   windowed [`IoBudget`], lowest disk first, lowest block first.
//! * **Scrubbing** sweeps redundancy groups during idle maintenance
//!   windows, remaps latent media defects, rewrites lost blocks from
//!   the surviving copy, and repairs mirror/parity mismatches.
//!
//! Determinism invariant: when several disks complete at the same
//! simulated instant, [`ArrayVolume::complete_next`] always retires the
//! lowest disk index first. Combined with the stateless stripe map and
//! pure sim-time maintenance scheduling this keeps every array run
//! byte-identical regardless of host threading. A volume with
//! `Redundancy::None` takes exactly the pre-redundancy code paths.

use crate::stripe::{Redundancy, StripeMap, StripePolicy};
use abr_core::recovery::{IoBudget, MaintenanceConfig};
use abr_disk::SECTOR_SIZE;
use abr_driver::request::IoDir;
use abr_driver::{AdaptiveDriver, DriverError, IoRequest, RequestId};
use abr_obs::{with_registry, CounterId, GaugeId, HiresId};
use abr_sim::SimTime;
use bytes::Bytes;
use std::collections::HashMap; // abr-lint: allow(D001, request bookkeeping; keyed insert/remove only, completion order is driven by sorted member queues)
use std::collections::{BTreeMap, BTreeSet};

/// Opaque identifier of a volume-level request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VolRequestId(pub u64);

/// A finished volume request: all of its per-disk sub-requests have
/// completed, merged in sim time.
#[derive(Debug, Clone)]
pub struct VolCompletion {
    /// The volume request's id.
    pub id: VolRequestId,
    /// When the volume accepted the request.
    pub arrived: SimTime,
    /// When the *last* sub-request completed.
    pub completed: SimTime,
    /// How many per-disk sub-requests the request was split into.
    pub n_subs: u32,
    /// The logical outcome. For redundant volumes a request only
    /// reports an error when the data itself was unserveable: a failed
    /// copy/parity write (or a failed-over read that a survivor
    /// served) completes clean and is repaired in the background.
    pub error: Option<DriverError>,
}

/// Health of one member disk, as reported by [`ArrayVolume::health`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct DiskHealth {
    /// Disk index within the array.
    pub disk: u32,
    /// The disk is powered off (a `FaultPlan` power cut fired).
    pub dead: bool,
    /// The spindle died for good (whole-disk death); only replacement
    /// brings the slot back.
    pub failed: bool,
    /// The driver is in degraded pass-through mode (block table
    /// unreadable); rearrangement is disabled but I/O still flows.
    pub degraded: bool,
    /// The disk is serving but still re-silvering: redundancy has not
    /// yet been restored for `stale` of its blocks.
    pub rebuilding: bool,
    /// Quarantined reserved-area slots.
    pub quarantined: u32,
    /// Blocks whose freshest copy was lost to a hard error.
    pub lost: u32,
    /// Blocks currently placed in this disk's reserved area.
    pub placed: u32,
    /// Blocks whose on-disk bytes await re-silvering.
    pub stale: u32,
}

impl DiskHealth {
    /// A disk that needs operator attention: dead, failed, degraded,
    /// mid-rebuild, or with data loss.
    pub fn impaired(&self) -> bool {
        self.dead || self.failed || self.degraded || self.rebuilding || self.lost > 0
    }
}

/// Array-level health summary.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ArrayHealth {
    /// Per-disk state, indexed by disk.
    pub disks: Vec<DiskHealth>,
}

impl ArrayHealth {
    /// Disks currently serving normally (not dead, not degraded).
    pub fn n_healthy(&self) -> usize {
        self.disks.iter().filter(|d| !d.dead && !d.degraded).count()
    }

    /// Disks that are powered off.
    pub fn n_dead(&self) -> usize {
        self.disks.iter().filter(|d| d.dead).count()
    }

    /// Disks whose spindle died for good (replacement required).
    pub fn n_failed(&self) -> usize {
        self.disks.iter().filter(|d| d.failed).count()
    }

    /// Disks serving but still re-silvering.
    pub fn n_rebuilding(&self) -> usize {
        self.disks.iter().filter(|d| d.rebuilding).count()
    }

    /// Disks in degraded pass-through mode.
    pub fn n_degraded(&self) -> usize {
        self.disks.iter().filter(|d| d.degraded).count()
    }

    /// Total lost blocks across the array.
    pub fn total_lost(&self) -> u64 {
        self.disks.iter().map(|d| u64::from(d.lost)).sum()
    }

    /// Total blocks awaiting re-silvering across the array.
    pub fn total_stale(&self) -> u64 {
        self.disks.iter().map(|d| u64::from(d.stale)).sum()
    }

    /// Whether every disk is serving normally with no data loss.
    pub fn is_fully_healthy(&self) -> bool {
        self.disks.iter().all(|d| !d.impaired())
    }
}

/// Why a redundancy-aware sub-request was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubRole {
    /// Serves the user's data directly: its failure (after one
    /// failover attempt for reads) fails the request.
    Primary,
    /// Mirror copy write; failure marks the block stale, not the
    /// request.
    Copy,
    /// Parity update write; failure marks the parity chunk stale.
    Parity,
}

/// Redundancy bookkeeping carried by each user sub-request.
#[derive(Debug, Clone, Copy)]
struct RedSub {
    role: SubRole,
    dir: IoDir,
    /// Volume sector of the piece (for completion-time failover).
    vsector: u64,
    n_sectors: u32,
    /// Disk block the sub targets on its member.
    dblock: u64,
    /// No further failover: already the second attempt, or a
    /// reconstruction read.
    retried: bool,
}

/// Why a background-maintenance sub-request was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MaintRole {
    /// Survivor read feeding a re-silver write.
    RebuildRead,
    /// Re-silver write of the named disk block.
    RebuildWrite(u64),
    /// Scrub verification read.
    ScrubRead,
    /// Scrub repair write of the named disk block.
    ScrubWrite(u64),
}

/// One sub-request's routing decision, ready to submit.
struct Routed {
    disk: usize,
    req: IoRequest,
    red: Option<RedSub>,
    /// Full-block image to record as in-flight once submitted.
    pending_img: Option<Vec<u8>>,
}

/// Per-request bookkeeping while sub-requests are outstanding.
#[derive(Debug)]
struct Inflight {
    remaining: u32,
    n_subs: u32,
    arrived: SimTime,
    error: Option<DriverError>,
    /// Redundant writes: at least one replica/parity write landed, so
    /// the data is durable even if the primary write failed.
    red_write_ok: bool,
    /// First error among a redundant request's write subs (surfaced
    /// only if *no* write sub landed).
    red_write_err: Option<DriverError>,
}

/// Registry handles for the `array.*` metric family.
struct ArrayObs {
    requests: CounterId,
    subrequests: CounterId,
    dead: GaugeId,
    degraded: GaugeId,
    lost: GaugeId,
    /// Volume-level request latency (accept → last sub-request done),
    /// the array's roll-up counterpart of `driver.service_us`.
    request_us: HiresId,
    per_disk: Vec<DiskObs>,
}

struct DiskObs {
    submitted: CounterId,
    completed: CounterId,
    failed: CounterId,
}

impl ArrayObs {
    fn resolve(n_disks: usize) -> Self {
        with_registry(|r| {
            let disks = r.gauge("array.disks");
            r.set_gauge(disks, n_disks as i64);
            ArrayObs {
                requests: r.counter("array.requests"),
                subrequests: r.counter("array.subrequests"),
                dead: r.gauge("array.disks.dead"),
                degraded: r.gauge("array.disks.degraded"),
                lost: r.gauge("array.blocks.lost"),
                request_us: r.hires("array.request_us"),
                per_disk: (0..n_disks)
                    .map(|i| DiskObs {
                        submitted: r.counter(&format!("array.disk.{i}.submitted")),
                        completed: r.counter(&format!("array.disk.{i}.completed")),
                        failed: r.counter(&format!("array.disk.{i}.failed")),
                    })
                    .collect(),
            }
        })
    }
}

/// Registry handles for the redundancy metric families
/// (`array.rebuild.*`, `array.scrub.*`); resolved only for redundant
/// volumes so plain arrays register exactly the pre-redundancy ids.
struct RedObs {
    reads_degraded: CounterId,
    read_failovers: CounterId,
    writes_redirected: CounterId,
    rebuild_blocks: CounterId,
    rebuild_ops: CounterId,
    rebuild_errors: CounterId,
    rebuild_pending: GaugeId,
    disks_rebuilding: GaugeId,
    scrub_groups: CounterId,
    scrub_repairs: CounterId,
    scrub_defects: CounterId,
    scrub_mismatches: CounterId,
}

impl RedObs {
    fn resolve() -> Self {
        with_registry(|r| RedObs {
            reads_degraded: r.counter("array.reads.degraded"),
            read_failovers: r.counter("array.reads.failover"),
            writes_redirected: r.counter("array.writes.redirected"),
            rebuild_blocks: r.counter("array.rebuild.blocks"),
            rebuild_ops: r.counter("array.rebuild.ops"),
            rebuild_errors: r.counter("array.rebuild.errors"),
            rebuild_pending: r.gauge("array.rebuild.pending"),
            disks_rebuilding: r.gauge("array.disks.rebuilding"),
            scrub_groups: r.counter("array.scrub.groups"),
            scrub_repairs: r.counter("array.scrub.repairs"),
            scrub_defects: r.counter("array.scrub.defects"),
            scrub_mismatches: r.counter("array.scrub.mismatches"),
        })
    }
}

/// Background-maintenance state for a redundant volume.
struct MaintState {
    cfg: MaintenanceConfig,
    budget: IoBudget,
    /// Scrub sweep position (group index, wraps).
    scrub_cursor: u64,
    obs: RedObs,
}

/// Plain per-disk I/O tallies, independent of the registry, for tests
/// and reports that need exact counts from a specific volume instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct DiskIoCounts {
    /// Sub-requests submitted to this disk.
    pub submitted: u64,
    /// Sub-requests that completed successfully.
    pub completed: u64,
    /// Sub-requests that completed with an error.
    pub failed: u64,
}

/// XOR `src` into `acc` (parity accumulation).
fn xor_into(acc: &mut [u8], src: &[u8]) {
    debug_assert_eq!(acc.len(), src.len());
    for (a, s) in acc.iter_mut().zip(src) {
        *a ^= s;
    }
}

/// Overlay `data` onto `img` starting `off_sectors` into the block.
fn overlay(img: &mut [u8], off_sectors: u64, data: &[u8]) {
    let off = off_sectors as usize * SECTOR_SIZE;
    img[off..off + data.len()].copy_from_slice(data);
}

/// N adaptive drivers behind one block address space.
pub struct ArrayVolume {
    disks: Vec<AdaptiveDriver>,
    map: StripeMap,
    next_id: u64,
    subs: HashMap<(usize, RequestId), u64>, // abr-lint: allow(D001, keyed lookup only; never iterated)
    inflight: HashMap<u64, Inflight>, // abr-lint: allow(D001, keyed lookup only; never iterated)
    /// Redundancy bookkeeping per user sub (empty for plain volumes).
    red_subs: BTreeMap<(usize, RequestId), RedSub>,
    /// Maintenance subs (rebuild/scrub I/O); never surface to the user.
    maint_subs: BTreeMap<(usize, RequestId), MaintRole>,
    /// Per disk: blocks whose on-disk bytes await re-silvering.
    stale: Vec<BTreeSet<u64>>,
    /// Submitted-but-not-yet-dispatched write images, keyed by
    /// `(disk, dblock)`: the bytes the block will hold once the tagged
    /// request dispatches. Parity math and scrubbing read through this
    /// so queued writes are never double-counted.
    pending: BTreeMap<(usize, u64), (RequestId, Vec<u8>)>,
    maint: Option<MaintState>,
    io_counts: Vec<DiskIoCounts>,
    /// Volume-level requests that finished clean / with an error.
    req_ok: u64,
    req_failed: u64,
    obs: ArrayObs,
}

impl std::fmt::Debug for ArrayVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayVolume")
            .field("n_disks", &self.disks.len())
            .field("policy", &self.map.policy())
            .field("redundancy", &self.map.redundancy())
            .field("vol_sectors", &self.map.vol_sectors())
            .finish_non_exhaustive()
    }
}

impl ArrayVolume {
    /// Assemble a redundancy-free volume from identically-formatted
    /// member drivers.
    ///
    /// Each driver's disk index is stamped so its request spans and
    /// metrics carry the per-disk label dimension.
    ///
    /// # Panics
    /// If `disks` is empty or the members disagree on partition size or
    /// block size (heterogeneous arrays are out of scope).
    pub fn new(disks: Vec<AdaptiveDriver>, policy: StripePolicy) -> Self {
        Self::with_redundancy(
            disks,
            policy,
            Redundancy::None,
            MaintenanceConfig::default(),
        )
    }

    /// Assemble a volume with an explicit redundancy scheme and
    /// maintenance knobs (ignored for `Redundancy::None`).
    ///
    /// # Panics
    /// On the constraints of [`Self::new`] plus the scheme's member
    /// count requirements (see [`StripeMap::new_redundant`]).
    pub fn with_redundancy(
        mut disks: Vec<AdaptiveDriver>,
        policy: StripePolicy,
        redundancy: Redundancy,
        maint_cfg: MaintenanceConfig,
    ) -> Self {
        assert!(!disks.is_empty(), "a volume needs at least one disk");
        let per_disk_sectors = disks[0].label().partitions[0].n_sectors;
        let spb = disks[0].sectors_per_block();
        for (i, d) in disks.iter_mut().enumerate() {
            assert_eq!(
                d.label().partitions[0].n_sectors,
                per_disk_sectors,
                "disk {i} partition size differs"
            );
            assert_eq!(d.sectors_per_block(), spb, "disk {i} block size differs");
            d.set_disk_index(i as u32);
        }
        let map = StripeMap::new_redundant(policy, redundancy, disks.len(), per_disk_sectors, spb);
        #[cfg(feature = "sanitize")]
        if let Err(e) = map.check_chunk_permutation() {
            panic!("stripe map is not a chunk permutation: {e}");
        }
        let obs = ArrayObs::resolve(disks.len());
        let n = disks.len();
        let maint = redundancy.is_redundant().then(|| MaintState {
            cfg: maint_cfg,
            budget: IoBudget::new(maint_cfg.period, maint_cfg.rebuild_ops_per_window),
            scrub_cursor: 0,
            obs: RedObs::resolve(),
        });
        let mut vol = ArrayVolume {
            disks,
            map,
            next_id: 0,
            subs: HashMap::new(), // abr-lint: allow(D001, keyed lookup only; never iterated)
            inflight: HashMap::new(), // abr-lint: allow(D001, keyed lookup only; never iterated)
            red_subs: BTreeMap::new(),
            maint_subs: BTreeMap::new(),
            stale: vec![BTreeSet::new(); n],
            pending: BTreeMap::new(),
            maint,
            io_counts: vec![DiskIoCounts::default(); n],
            req_ok: 0,
            req_failed: 0,
            obs,
        };
        vol.init_parity();
        vol
    }

    /// Array creation: materialize consistent parity for every row —
    /// the simulator's stand-in for the parity build a real array does
    /// at `mkraid` time. Untimed store writes, exactly like formatting;
    /// freshly formatted members carry identical metadata in their
    /// content blocks, so without this step the parity identity would
    /// start out violated.
    fn init_parity(&mut self) {
        if self.redundancy() != Redundancy::RotParity {
            return;
        }
        let spb = self.map.sectors_per_block();
        let n = self.disks.len() as u64;
        let cb = self.map.policy().chunk_blocks();
        let rows = self.map.vol_sectors() / (spb * cb * (n - 1));
        for row in 0..rows {
            let pd = (row % n) as usize;
            for i in 0..cb {
                let pdb = row * cb + i;
                let mut acc = vec![0u8; spb as usize * SECTOR_SIZE];
                for vb in self.map.row_blocks_at(pdb) {
                    let (d, db) = self.map.map_block(vb);
                    let img = self.disks[d]
                        .peek(0, db * spb, spb as u32)
                        .expect("fresh member has no lost blocks");
                    xor_into(&mut acc, &img);
                }
                let segs = self.disks[pd]
                    .physical_segments(0, pdb * spb, spb as u32)
                    .expect("parity block in range");
                let mut off = 0usize;
                for (s, len) in segs {
                    let bytes = len as usize * SECTOR_SIZE;
                    self.disks[pd]
                        .disk_mut()
                        .store_mut()
                        .write(s, &acc[off..off + bytes]);
                    off += bytes;
                }
            }
        }
    }

    /// The stripe map in force.
    pub fn map(&self) -> &StripeMap {
        &self.map
    }

    /// The redundancy scheme in force.
    pub fn redundancy(&self) -> Redundancy {
        self.map.redundancy()
    }

    /// Number of member disks.
    pub fn n_disks(&self) -> usize {
        self.disks.len()
    }

    /// Total sectors the volume exposes (partition 0 of the array).
    pub fn vol_sectors(&self) -> u64 {
        self.map.vol_sectors()
    }

    /// A member driver.
    pub fn disk(&self, i: usize) -> &AdaptiveDriver {
        &self.disks[i]
    }

    /// A member driver, mutably — for the per-disk rearrangement
    /// daemons and fault-plan installation.
    pub fn disk_mut(&mut self, i: usize) -> &mut AdaptiveDriver {
        &mut self.disks[i]
    }

    /// Exact per-disk sub-request tallies for this volume instance.
    pub fn io_counts(&self, i: usize) -> DiskIoCounts {
        self.io_counts[i]
    }

    /// Whether member `i` cannot serve timed I/O at `now`: its spindle
    /// failed, its power is cut, or a scheduled death/cut time has
    /// passed (the injector flag flips lazily on the next op, so the
    /// schedule is consulted directly to keep routing deterministic).
    pub fn disk_down(&self, i: usize, now: SimTime) -> bool {
        self.disks[i].disk().injector().is_some_and(|inj| {
            inj.is_dead()
                || inj.is_failed()
                || inj.plan().disk_death_at.is_some_and(|t| now >= t)
                || inj.plan().power_cut_at.is_some_and(|t| now >= t)
        })
    }

    /// Blocks still awaiting re-silvering on member `i`.
    pub fn stale_blocks(&self, i: usize) -> usize {
        self.stale[i].len()
    }

    /// Total blocks awaiting re-silvering across the array.
    pub fn rebuild_pending(&self) -> usize {
        self.stale.iter().map(|s| s.len()).sum()
    }

    /// Lifetime `(completed_clean, completed_with_error)` volume
    /// request tallies — the user-visible availability figure.
    pub fn request_outcomes(&self) -> (u64, u64) {
        (self.req_ok, self.req_failed)
    }

    /// The transfer length of disk block `dblock` (a full block, or
    /// the partition's partial tail on an identity-mapped member).
    fn block_span(&self, disk: usize, dblock: u64) -> u32 {
        let spb = self.map.sectors_per_block();
        let part = self.disks[disk].label().partitions[0].n_sectors;
        ((part - dblock * spb).min(spb)) as u32
    }

    /// The block's current bytes on one member: the queued write image
    /// if one is in flight, else the backing store (fails for a lost
    /// block). *Not* redundancy-aware — see [`Self::logical_block`].
    fn block_bytes(&self, disk: usize, dblock: u64) -> Result<Vec<u8>, DriverError> {
        if let Some((_, img)) = self.pending.get(&(disk, dblock)) {
            return Ok(img.clone());
        }
        let spb = self.map.sectors_per_block();
        let span = self.block_span(disk, dblock);
        self.disks[disk]
            .peek(0, dblock * spb, span)
            .map(|b| b.to_vec())
    }

    /// The *logical* bytes of volume block `vblock`, resolved through
    /// the redundancy scheme: the primary copy when current, else the
    /// mirror partner, else parity reconstruction. Fails only when
    /// redundancy cannot cover the block (multiple failures).
    fn logical_block(&self, vblock: u64) -> Result<Vec<u8>, DriverError> {
        let (d, db) = self.map.map_block(vblock);
        match self.map.redundancy() {
            Redundancy::None => self.block_bytes(d, db),
            Redundancy::Mirror => {
                if !self.stale[d].contains(&db) {
                    if let Ok(b) = self.block_bytes(d, db) {
                        return Ok(b);
                    }
                }
                let p = self.map.mirror_partner(d);
                if self.stale[p].contains(&db) {
                    return Err(DriverError::DataLoss);
                }
                self.block_bytes(p, db)
            }
            Redundancy::RotParity => {
                if !self.stale[d].contains(&db) {
                    if let Ok(b) = self.block_bytes(d, db) {
                        return Ok(b);
                    }
                }
                self.reconstruct_block(vblock)
            }
        }
    }

    /// Rebuild a data block's bytes from its row's parity and peers.
    fn reconstruct_block(&self, vblock: u64) -> Result<Vec<u8>, DriverError> {
        let (pd, pdb) = self.map.parity_location(vblock);
        if self.stale[pd].contains(&pdb) {
            return Err(DriverError::DataLoss);
        }
        let mut acc = self.block_bytes(pd, pdb)?;
        for (peer_d, peer_db) in self.map.data_peers_of_block(vblock) {
            if self.stale[peer_d].contains(&peer_db) {
                return Err(DriverError::DataLoss);
            }
            xor_into(&mut acc, &self.block_bytes(peer_d, peer_db)?);
        }
        Ok(acc)
    }

    /// Whether a timed read of `[sector, sector+n)` on member `disk`
    /// would serve the volume's current data: the member is up, the
    /// block is resilvered, not lost, and its physical home has no
    /// latent defect.
    fn read_usable(&self, disk: usize, sector: u64, n: u32, now: SimTime) -> bool {
        if self.disk_down(disk, now) {
            return false;
        }
        let dblock = sector / self.map.sectors_per_block();
        if self.stale[disk].contains(&dblock) {
            return false;
        }
        let drv = &self.disks[disk];
        if drv.block_is_lost(0, sector) {
            return false;
        }
        if let (Ok(segs), Some(inj)) = (drv.physical_segments(0, sector, n), drv.disk().injector())
        {
            if segs.iter().any(|&(s, len)| inj.overlaps_defect(s, len)) {
                return false;
            }
        }
        true
    }

    /// Route one block-contained piece into member sub-requests.
    /// Plain volumes produce exactly the historical single sub.
    fn route_piece(&mut self, req: &IoRequest, now: SimTime) -> Vec<Routed> {
        let (disk, sector) = self.map.map_sector(req.sector_in_partition);
        if !self.redundancy().is_redundant() {
            return vec![Routed {
                disk,
                req: IoRequest {
                    sector_in_partition: sector,
                    ..req.clone()
                },
                red: None,
                pending_img: None,
            }];
        }
        match req.dir {
            IoDir::Read => self.route_read(req, disk, sector, now),
            IoDir::Write => self.route_write(req, disk, sector, now),
        }
    }

    fn route_read(
        &mut self,
        req: &IoRequest,
        disk: usize,
        sector: u64,
        now: SimTime,
    ) -> Vec<Routed> {
        let spb = self.map.sectors_per_block();
        let dblock = sector / spb;
        let off = sector % spb;
        let n = req.n_sectors;
        let vsector = req.sector_in_partition;
        let sub = |disk: usize, sector: u64, dblock: u64, retried: bool| Routed {
            disk,
            req: IoRequest::read(0, sector, n),
            red: Some(RedSub {
                role: SubRole::Primary,
                dir: IoDir::Read,
                vsector,
                n_sectors: n,
                dblock,
                retried,
            }),
            pending_img: None,
        };
        if self.read_usable(disk, sector, n, now) {
            return vec![sub(disk, sector, dblock, false)];
        }
        if let Some(m) = &self.maint {
            with_registry(|r| r.inc(m.obs.reads_degraded, 1));
        }
        match self.redundancy() {
            Redundancy::Mirror => {
                let p = self.map.mirror_partner(disk);
                if self.read_usable(p, sector, n, now) {
                    vec![sub(p, sector, dblock, true)]
                } else {
                    // No survivor: surface the failure on the primary.
                    vec![sub(disk, sector, dblock, true)]
                }
            }
            Redundancy::RotParity => {
                // Reconstruction: read the surviving row (peers +
                // parity) instead; the request completes when the whole
                // row is in.
                let vblock = vsector / spb;
                let (pd, pdb) = self.map.parity_location(vblock);
                let mut locs = self.map.data_peers_of_block(vblock);
                locs.push((pd, pdb));
                if locs
                    .iter()
                    .any(|&(d, db)| self.disk_down(d, now) || self.stale[d].contains(&db))
                {
                    return vec![sub(disk, sector, dblock, true)];
                }
                locs.into_iter()
                    .map(|(d, db)| sub(d, db * spb + off, db, true))
                    .collect()
            }
            Redundancy::None => unreachable!("routed earlier"),
        }
    }

    fn route_write(
        &mut self,
        req: &IoRequest,
        disk: usize,
        sector: u64,
        now: SimTime,
    ) -> Vec<Routed> {
        // Redundant schemes need the payload bytes up front (parity
        // deltas, pending write images), so a seeded request is
        // materialized once here.
        let materialized;
        let req = if req.payload_seed.is_some() {
            materialized = IoRequest::write(
                req.partition,
                req.sector_in_partition,
                req.n_sectors,
                req.payload(),
            );
            &materialized
        } else {
            req
        };
        let spb = self.map.sectors_per_block();
        let dblock = sector / spb;
        let off = sector % spb;
        let n = req.n_sectors;
        let vblock = req.sector_in_partition / spb;
        let span = self.block_span(disk, dblock);
        let full = off == 0 && n == span;
        let mut out = Vec::new();
        let mut redirected = 0u64;

        // Write targets: the data home plus the scheme's redundancy
        // location, each with its payload computed up front.
        match self.redundancy() {
            Redundancy::Mirror => {
                let partner = self.map.mirror_partner(disk);
                for (target, role) in [(disk, SubRole::Primary), (partner, SubRole::Copy)] {
                    if self.disk_down(target, now) {
                        self.stale[target].insert(dblock);
                        redirected += 1;
                        continue;
                    }
                    if let Some(r) =
                        self.data_write_sub(target, dblock, off, full, &req.data, role, req)
                    {
                        out.push(r);
                    } else {
                        redirected += 1;
                    }
                }
            }
            Redundancy::RotParity => {
                // Old data *logical* span, captured before any state
                // changes (a redirected write below marks the block
                // stale, which would flip this to the reconstruction
                // path and double-apply the parity delta).
                let old_block = self.logical_block(vblock);
                if self.disk_down(disk, now) {
                    self.stale[disk].insert(dblock);
                    redirected += 1;
                } else if let Some(r) =
                    self.data_write_sub(disk, dblock, off, full, &req.data, SubRole::Primary, req)
                {
                    out.push(r);
                } else {
                    redirected += 1;
                }
                match self.parity_write_sub(vblock, off, n, &req.data, old_block, now) {
                    Some(r) => out.push(r),
                    None => redirected += 1,
                }
            }
            Redundancy::None => unreachable!("routed earlier"),
        }
        if let (Some(m), true) = (&self.maint, redirected > 0) {
            with_registry(|r| r.inc(m.obs.writes_redirected, redirected));
        }
        if out.is_empty() {
            // Every target is down: submit to the data home anyway so
            // the failure surfaces instead of silently vanishing.
            out.push(Routed {
                disk,
                req: IoRequest {
                    sector_in_partition: sector,
                    ..req.clone()
                },
                red: Some(RedSub {
                    role: SubRole::Primary,
                    dir: IoDir::Write,
                    vsector: req.sector_in_partition,
                    n_sectors: n,
                    dblock,
                    retried: true,
                }),
                pending_img: None,
            });
        }
        out
    }

    /// A data or mirror-copy write sub for `payload` at block `dblock`
    /// of an *up* member. A partial write to a stale block is promoted
    /// to a full-block write of the logical image (re-silvering it in
    /// passing); returns `None` when the promotion source is
    /// unavailable (block stays stale).
    #[allow(clippy::too_many_arguments)]
    fn data_write_sub(
        &mut self,
        target: usize,
        dblock: u64,
        off: u64,
        full: bool,
        payload: &Bytes,
        role: SubRole,
        req: &IoRequest,
    ) -> Option<Routed> {
        let spb = self.map.sectors_per_block();
        let span = self.block_span(target, dblock);
        let vblock = req.sector_in_partition / spb;
        let red = RedSub {
            role,
            dir: IoDir::Write,
            vsector: req.sector_in_partition,
            n_sectors: req.n_sectors,
            dblock,
            retried: false,
        };
        if self.stale[target].contains(&dblock) && !full {
            // Promote: overlay the payload on the logical image and
            // rewrite the whole block.
            let mut img = match self.logical_block(vblock) {
                Ok(img) => img,
                Err(_) => return None,
            };
            overlay(&mut img, off, payload);
            self.stale[target].remove(&dblock);
            return Some(Routed {
                disk: target,
                req: IoRequest::write(0, dblock * spb, span, Bytes::from(img.clone())),
                red: Some(RedSub {
                    n_sectors: span,
                    ..red
                }),
                pending_img: Some(img),
            });
        }
        if full {
            self.stale[target].remove(&dblock);
        }
        // In-flight image: the current block bytes with the payload
        // overlaid (whole payload for a full write).
        let pending_img = if full {
            Some(payload.to_vec())
        } else {
            match self.block_bytes(target, dblock) {
                Ok(mut img) => {
                    overlay(&mut img, off, payload);
                    Some(img)
                }
                Err(_) => None, // partial write over a lost block: image unknowable
            }
        };
        Some(Routed {
            disk: target,
            req: IoRequest::write(0, dblock * spb + off, req.n_sectors, payload.clone()),
            red: Some(red),
            pending_img,
        })
    }

    /// The parity-update write for a data write to `vblock`:
    /// `parity_new = parity_old ⊕ data_old ⊕ data_new` over the written
    /// span, or a full parity rebuild when the old parity is stale or
    /// unreadable. Returns `None` (parity marked stale) when the parity
    /// member is down or the sources are unavailable.
    fn parity_write_sub(
        &mut self,
        vblock: u64,
        off: u64,
        n: u32,
        payload: &Bytes,
        old_block: Result<Vec<u8>, DriverError>,
        now: SimTime,
    ) -> Option<Routed> {
        let spb = self.map.sectors_per_block();
        let (pd, pdb) = self.map.parity_location(vblock);
        if self.disk_down(pd, now) {
            self.stale[pd].insert(pdb);
            return None;
        }
        let red = RedSub {
            role: SubRole::Parity,
            dir: IoDir::Write,
            vsector: vblock * spb,
            n_sectors: n,
            dblock: pdb,
            retried: false,
        };
        let delta = (|| {
            if self.stale[pd].contains(&pdb) {
                return None;
            }
            let old = old_block.as_ref().ok()?;
            let parity_old = self.block_bytes(pd, pdb).ok()?;
            let lo = off as usize * SECTOR_SIZE;
            let hi = lo + n as usize * SECTOR_SIZE;
            let mut span = parity_old[lo..hi].to_vec();
            xor_into(&mut span, &old[lo..hi]);
            xor_into(&mut span, payload);
            // In-flight image of the whole parity block.
            let mut img = parity_old;
            overlay(&mut img, off, &span);
            Some((span, img))
        })();
        if let Some((span, img)) = delta {
            return Some(Routed {
                disk: pd,
                req: IoRequest::write(0, pdb * spb + off, n, Bytes::from(span)),
                red: Some(red),
                pending_img: Some(img),
            });
        }
        // Full parity rebuild: XOR the whole row's logical data, with
        // the new payload overlaid on its own block.
        let mut own = match self.logical_block(vblock) {
            Ok(img) => img,
            Err(_) if off == 0 && u64::from(n) == spb => payload.to_vec(),
            Err(_) => {
                self.stale[pd].insert(pdb);
                return None;
            }
        };
        overlay(&mut own, off, payload);
        let mut parity = own;
        for (peer_d, peer_db) in self.map.data_peers_of_block(vblock) {
            let peer_vb = match self.map.vblock_at(peer_d, peer_db) {
                Some(vb) => vb,
                None => {
                    self.stale[pd].insert(pdb);
                    return None;
                }
            };
            match self.logical_block(peer_vb) {
                Ok(b) => xor_into(&mut parity, &b),
                Err(_) => {
                    self.stale[pd].insert(pdb);
                    return None;
                }
            }
        }
        self.stale[pd].remove(&pdb);
        Some(Routed {
            disk: pd,
            req: IoRequest::write(0, pdb * spb, spb as u32, Bytes::from(parity.clone())),
            red: Some(RedSub {
                n_sectors: spb as u32,
                ..red
            }),
            pending_img: Some(parity),
        })
    }

    /// Submit a block-interface request against the volume's address
    /// space. Like the single-disk driver, the request must not cross a
    /// file-system block boundary — which guarantees it maps onto
    /// exactly one member disk (its redundancy fan-out may touch more).
    pub fn submit(&mut self, req: IoRequest, now: SimTime) -> Result<VolRequestId, DriverError> {
        if req.partition != 0 {
            return Err(DriverError::BadPartition);
        }
        if req.n_sectors == 0 {
            return Err(DriverError::EmptyTransfer);
        }
        let end = req
            .sector_in_partition
            .checked_add(u64::from(req.n_sectors))
            .ok_or(DriverError::OutOfPartition)?;
        if end > self.map.vol_sectors() {
            return Err(DriverError::OutOfPartition);
        }
        let routed = self.route_piece(&req, now);
        let placed = self.place(routed, now)?;
        Ok(self.admit(now, placed))
    }

    /// Submit routed subs to their members, registering redundancy
    /// bookkeeping and pending write images.
    fn place(
        &mut self,
        routed: Vec<Routed>,
        now: SimTime,
    ) -> Result<Vec<(usize, RequestId)>, DriverError> {
        let mut placed = Vec::with_capacity(routed.len());
        for r in routed {
            match self.disks[r.disk].submit(r.req, now) {
                Ok(id) => {
                    if let Some(red) = r.red {
                        self.red_subs.insert((r.disk, id), red);
                        if let Some(img) = r.pending_img {
                            self.pending.insert((r.disk, red.dblock), (id, img));
                        }
                    }
                    placed.push((r.disk, id));
                }
                Err(e) => {
                    for (d, id) in placed {
                        self.subs.remove(&(d, id));
                        self.red_subs.remove(&(d, id));
                    }
                    return Err(e);
                }
            }
        }
        Ok(placed)
    }

    /// Submit a raw transfer of `n_sectors` starting at `sector`,
    /// splitting it into one sub-request per file-system block (the
    /// same split the single-disk driver's raw path performs) and
    /// fanning the pieces out to their home disks.
    pub fn submit_raw(
        &mut self,
        dir: IoDir,
        sector: u64,
        n_sectors: u32,
        now: SimTime,
    ) -> Result<VolRequestId, DriverError> {
        if n_sectors == 0 {
            return Err(DriverError::EmptyTransfer);
        }
        let end = sector
            .checked_add(u64::from(n_sectors))
            .ok_or(DriverError::OutOfPartition)?;
        if end > self.map.vol_sectors() {
            return Err(DriverError::OutOfPartition);
        }
        let spb = self.map.sectors_per_block() as u32;
        let mut placed: Vec<(usize, RequestId)> = Vec::new();
        for (s, n) in abr_driver::physio::split(sector, n_sectors, spb) {
            let piece = match dir {
                IoDir::Read => IoRequest::read(0, s, n),
                IoDir::Write => IoRequest::write_zeroes(0, s, n),
            };
            let routed = self.route_piece(&piece, now);
            match self.place(routed, now) {
                Ok(mut p) => placed.append(&mut p),
                Err(e) => {
                    // Piece rejected up front (it never reached a
                    // queue): orphan the accepted pieces — they will
                    // complete and be dropped — and report the error.
                    for (d, id) in placed {
                        self.subs.remove(&(d, id));
                        self.red_subs.remove(&(d, id));
                    }
                    return Err(e);
                }
            }
        }
        Ok(self.admit(now, placed))
    }

    /// Record an accepted request and its sub-requests.
    fn admit(&mut self, now: SimTime, pieces: Vec<(usize, RequestId)>) -> VolRequestId {
        let vol = self.next_id;
        self.next_id += 1;
        let n_subs = pieces.len() as u32;
        for (disk, id) in pieces {
            self.subs.insert((disk, id), vol);
            self.io_counts[disk].submitted += 1;
            with_registry(|r| {
                r.inc(self.obs.per_disk[disk].submitted, 1);
                r.inc(self.obs.subrequests, 1);
            });
        }
        with_registry(|r| r.inc(self.obs.requests, 1));
        self.inflight.insert(
            vol,
            Inflight {
                remaining: n_subs,
                n_subs,
                arrived: now,
                error: None,
                red_write_ok: false,
                red_write_err: None,
            },
        );
        VolRequestId(vol)
    }

    /// When the next sub-request anywhere in the array will complete.
    /// Idle disks with queued work dispatch here, exactly like the
    /// single-disk driver's `next_completion`.
    pub fn next_completion(&mut self) -> Option<SimTime> {
        self.disks
            .iter_mut()
            .filter_map(|d| d.next_completion())
            .min()
    }

    /// Retire the sub-request completing at `now` (ties broken by
    /// lowest disk index). Returns the volume-level completion if this
    /// was its request's last outstanding piece (maintenance I/O and
    /// failed-over reads never surface here).
    ///
    /// # Panics
    /// If no disk has a completion at exactly `now` — same contract as
    /// the single-disk driver.
    pub fn complete_next(&mut self, now: SimTime) -> Option<VolCompletion> {
        let disk = (0..self.disks.len())
            .find(|&i| self.disks[i].next_completion() == Some(now))
            .expect("no completion at this time");
        let c = self.disks[disk].complete_next(now);
        if c.error.is_none() {
            self.io_counts[disk].completed += 1;
            with_registry(|r| r.inc(self.obs.per_disk[disk].completed, 1));
        } else {
            self.io_counts[disk].failed += 1;
            with_registry(|r| r.inc(self.obs.per_disk[disk].failed, 1));
        }
        let key = (disk, c.id);
        if let Some(role) = self.maint_subs.remove(&key) {
            self.finish_maint(disk, role, c.id, c.error);
            return None;
        }
        let red = self.red_subs.remove(&key);
        // Retire this sub's pending write image (unless a newer write
        // to the same block superseded it).
        if let Some(rs) = red {
            if !rs.dir.is_read() {
                if let Some(&(pid, _)) = self.pending.get(&(disk, rs.dblock)) {
                    if pid == c.id {
                        self.pending.remove(&(disk, rs.dblock));
                    }
                }
            }
        }
        let vol = self.subs.remove(&key)?;
        // Completion-time failover: the member died with a primary read
        // in flight — re-issue on the survivor(s) before accounting.
        let mut extra_subs: Vec<(usize, RequestId)> = Vec::new();
        if let (Some(rs), Some(err)) = (red, c.error.clone()) {
            match rs.role {
                SubRole::Primary if rs.dir.is_read() && !rs.retried => {
                    let piece = IoRequest::read(0, rs.vsector, rs.n_sectors);
                    let routed = self.failover_read(&piece, disk, now);
                    if routed.is_empty() {
                        let inflight = self.inflight.get_mut(&vol).expect("live request"); // abr-lint: allow(P001, sub completion implies a live parent request)
                        if inflight.error.is_none() {
                            inflight.error = Some(err);
                        }
                    } else if let Ok(p) = self.place(routed, now) {
                        if let Some(m) = &self.maint {
                            with_registry(|r| r.inc(m.obs.read_failovers, 1));
                        }
                        extra_subs = p;
                    }
                }
                SubRole::Primary if rs.dir.is_read() => {
                    let inflight = self.inflight.get_mut(&vol).expect("live request"); // abr-lint: allow(P001, sub completion implies a live parent request)
                    if inflight.error.is_none() {
                        inflight.error = Some(err);
                    }
                }
                SubRole::Primary | SubRole::Copy | SubRole::Parity => {
                    // A write replica failed: the block's on-disk bytes
                    // diverge from the volume's logical contents — mark
                    // it for re-silvering instead of failing the
                    // request (another replica may have landed).
                    self.stale[disk].insert(rs.dblock);
                    let inflight = self.inflight.get_mut(&vol).expect("live request"); // abr-lint: allow(P001, sub completion implies a live parent request)
                    if inflight.red_write_err.is_none() {
                        inflight.red_write_err = Some(err);
                    }
                }
            }
        } else if let Some(rs) = red {
            if !rs.dir.is_read() {
                self.inflight
                    .get_mut(&vol)
                    .expect("live request") // abr-lint: allow(P001, sub completion implies a live parent request)
                    .red_write_ok = true;
            }
        } else if let Some(err) = c.error {
            // Plain (non-redundant) volume: first error wins, as ever.
            let inflight = self.inflight.get_mut(&vol).expect("live request"); // abr-lint: allow(P001, sub completion implies a live parent request)
            if inflight.error.is_none() {
                inflight.error = Some(err);
            }
        }
        let inflight = self
            .inflight
            .get_mut(&vol)
            .expect("sub-request maps to a live request"); // abr-lint: allow(P001, sub completion implies a live parent request)
        for (d, id) in extra_subs {
            self.subs.insert((d, id), vol);
            inflight.remaining += 1;
            inflight.n_subs += 1;
        }
        let inflight = self.inflight.get_mut(&vol).expect("live request"); // abr-lint: allow(P001, sub completion implies a live parent request)
        inflight.remaining -= 1;
        if inflight.remaining > 0 {
            return None;
        }
        let done = self.inflight.remove(&vol).expect("checked above"); // abr-lint: allow(P001, remaining hit zero under this key)
        let error = done.error.or(if done.red_write_ok {
            None
        } else {
            done.red_write_err
        });
        if error.is_none() {
            self.req_ok += 1;
        } else {
            self.req_failed += 1;
        }
        with_registry(|r| r.observe_hires(self.obs.request_us, (now - done.arrived).as_micros()));
        Some(VolCompletion {
            id: VolRequestId(vol),
            arrived: done.arrived,
            completed: now,
            n_subs: done.n_subs,
            error,
        })
    }

    /// Survivor route for a read whose primary sub failed at
    /// completion on `failed_disk`. Empty when no survivor can serve.
    fn failover_read(
        &mut self,
        piece: &IoRequest,
        failed_disk: usize,
        now: SimTime,
    ) -> Vec<Routed> {
        let spb = self.map.sectors_per_block();
        let (d, s) = self.map.map_sector(piece.sector_in_partition);
        let off = s % spb;
        let n = piece.n_sectors;
        let mk = |disk: usize, sector: u64, dblock: u64| Routed {
            disk,
            req: IoRequest::read(0, sector, n),
            red: Some(RedSub {
                role: SubRole::Primary,
                dir: IoDir::Read,
                vsector: piece.sector_in_partition,
                n_sectors: n,
                dblock,
                retried: true,
            }),
            pending_img: None,
        };
        match self.redundancy() {
            Redundancy::Mirror => {
                let p = self.map.mirror_partner(failed_disk);
                if self.read_usable(p, s, n, now) {
                    vec![mk(p, s, s / spb)]
                } else {
                    Vec::new()
                }
            }
            Redundancy::RotParity => {
                let vblock = piece.sector_in_partition / spb;
                let (pd, pdb) = self.map.parity_location(vblock);
                let mut locs = self.map.data_peers_of_block(vblock);
                locs.push((pd, pdb));
                if locs
                    .iter()
                    .any(|&(ld, ldb)| self.disk_down(ld, now) || self.stale[ld].contains(&ldb))
                {
                    return Vec::new();
                }
                let _ = d;
                locs.into_iter()
                    .map(|(ld, ldb)| mk(ld, ldb * spb + off, ldb))
                    .collect()
            }
            Redundancy::None => Vec::new(),
        }
    }

    /// Account a finished maintenance sub-request.
    fn finish_maint(
        &mut self,
        disk: usize,
        role: MaintRole,
        id: RequestId,
        err: Option<DriverError>,
    ) {
        let Some(m) = &self.maint else { return };
        match role {
            MaintRole::RebuildWrite(db) | MaintRole::ScrubWrite(db) => {
                if let Some(&(pid, _)) = self.pending.get(&(disk, db)) {
                    if pid == id {
                        self.pending.remove(&(disk, db));
                    }
                }
                let rebuild = matches!(role, MaintRole::RebuildWrite(_));
                if let Some(e) = err {
                    let _ = e;
                    if rebuild {
                        // The re-silver write itself failed: the block
                        // is still stale; retry next window.
                        self.stale[disk].insert(db);
                        with_registry(|r| r.inc(m.obs.rebuild_errors, 1));
                    }
                } else if rebuild {
                    with_registry(|r| r.inc(m.obs.rebuild_blocks, 1));
                }
            }
            MaintRole::RebuildRead | MaintRole::ScrubRead => {}
        }
    }

    /// Run every member to completion, returning merged volume
    /// completions in sim-time order.
    pub fn drain(&mut self) -> Vec<VolCompletion> {
        let mut out = Vec::new();
        while let Some(t) = self.next_completion() {
            if let Some(vc) = self.complete_next(t) {
                out.push(vc);
            }
        }
        out
    }

    /// Outstanding sub-requests across all member queues.
    pub fn queue_len(&self) -> usize {
        self.disks.iter().map(|d| d.queue_len()).sum()
    }

    /// Whether every member is idle.
    pub fn is_idle(&self) -> bool {
        self.disks.iter().all(|d| d.is_idle())
    }

    /// Swap a failed member for a freshly formatted replacement drive
    /// and queue its entire contents for re-silvering. The caller
    /// formats the replacement exactly like the original members and
    /// waits until the failed member has no in-flight sub-requests.
    ///
    /// # Panics
    /// If the volume is not redundant, the member still has queued or
    /// active requests, or the replacement's geometry differs.
    pub fn replace_disk(&mut self, i: usize, mut fresh: AdaptiveDriver) {
        assert!(
            self.redundancy().is_redundant(),
            "replacement without redundancy cannot be re-silvered"
        );
        assert!(
            self.disks[i].is_idle(),
            "drain the failed member before replacing it"
        );
        assert_eq!(
            fresh.label().partitions[0].n_sectors,
            self.disks[i].label().partitions[0].n_sectors,
            "replacement partition size differs"
        );
        assert_eq!(
            fresh.sectors_per_block(),
            self.disks[i].sectors_per_block(),
            "replacement block size differs"
        );
        fresh.set_disk_index(i as u32);
        self.disks[i] = fresh;
        // Queued write images aimed at the dead drive are void.
        self.pending.retain(|&(d, _), _| d != i);
        // Every block with volume content on this member is now stale.
        let spb = self.map.sectors_per_block();
        let vol_blocks = self.map.vol_sectors().div_ceil(spb);
        let content_disk = match self.redundancy() {
            Redundancy::Mirror => {
                let half = self.disks.len() / 2;
                if i < half {
                    i
                } else {
                    i - half
                }
            }
            _ => i,
        };
        let mut stale = BTreeSet::new();
        for vb in 0..vol_blocks {
            let (d, db) = self.map.map_block(vb);
            if d == content_disk {
                stale.insert(db);
            }
            if self.redundancy() == Redundancy::RotParity {
                let (pd, pdb) = self.map.parity_location(vb);
                if pd == i {
                    stale.insert(pdb);
                }
            }
        }
        self.stale[i] = stale;
    }

    /// Whether the volume runs background maintenance (redundant
    /// schemes only).
    pub fn has_maintenance(&self) -> bool {
        self.maint.is_some()
    }

    /// The maintenance configuration, if the volume is redundant.
    pub fn maintenance_config(&self) -> Option<MaintenanceConfig> {
        self.maint.as_ref().map(|m| m.cfg)
    }

    /// Peak rebuild ops consumed in any single budget window (the
    /// "rebuild stayed within its budget" figure).
    pub fn rebuild_peak_window_ops(&self) -> u32 {
        self.maint.as_ref().map_or(0, |m| m.budget.peak_used())
    }

    /// One background-maintenance window: re-silver stale blocks under
    /// the I/O budget, then (when the array is idle and fully
    /// re-silvered) scrub the next few redundancy groups. Pure
    /// sim-time work — byte-identical across host thread counts.
    pub fn maintenance_tick(&mut self, now: SimTime) {
        if self.maint.is_none() {
            return;
        }
        self.rebuild_tick(now);
        self.scrub_tick(now);
        if let Some(m) = &self.maint {
            let pending = self.stale.iter().map(|s| s.len() as i64).sum::<i64>();
            let rebuilding = self
                .stale
                .iter()
                .enumerate()
                .filter(|(i, s)| !s.is_empty() && !self.disk_down(*i, now))
                .count() as i64;
            with_registry(|r| {
                r.set_gauge(m.obs.rebuild_pending, pending);
                r.set_gauge(m.obs.disks_rebuilding, rebuilding);
            });
        }
    }

    /// Re-silver plan for one stale block: the survivor reads to issue
    /// and the bytes to write. `Ok(None)` = nothing stored there (drop
    /// the stale entry); `Err(())` = sources unavailable right now.
    #[allow(clippy::type_complexity)]
    fn resilver_plan(
        &self,
        i: usize,
        db: u64,
        now: SimTime,
    ) -> Result<Option<(Vec<(usize, u64, u32)>, Vec<u8>)>, ()> {
        let spb = self.map.sectors_per_block();
        match self.redundancy() {
            Redundancy::Mirror => {
                let half = self.disks.len() / 2;
                let content_disk = if i < half { i } else { i - half };
                if self.map.vblock_at(content_disk, db).is_none() {
                    return Ok(None);
                }
                let survivor = self.map.mirror_partner(i);
                if self.disk_down(survivor, now) || self.stale[survivor].contains(&db) {
                    return Err(());
                }
                let bytes = self.block_bytes(survivor, db).map_err(|_| ())?;
                let span = self.block_span(survivor, db);
                Ok(Some((vec![(survivor, db * spb, span)], bytes)))
            }
            Redundancy::RotParity => {
                let mut reads = Vec::new();
                let bytes = if self.map.is_parity_slot(i, db) {
                    // Recompute the row's parity from its data blocks.
                    let row = self.map.row_blocks_at(db);
                    if row.iter().any(|&vb| vb * spb >= self.map.vol_sectors()) {
                        return Ok(None);
                    }
                    let mut acc = vec![0u8; spb as usize * SECTOR_SIZE];
                    for &vb in &row {
                        let (d, ddb) = self.map.map_block(vb);
                        if self.disk_down(d, now) || self.stale[d].contains(&ddb) {
                            return Err(());
                        }
                        xor_into(&mut acc, &self.block_bytes(d, ddb).map_err(|_| ())?);
                        reads.push((d, ddb * spb, spb as u32));
                    }
                    acc
                } else {
                    let vb = match self.map.vblock_at(i, db) {
                        Some(vb) => vb,
                        None => return Ok(None),
                    };
                    let (pd, pdb) = self.map.parity_location(vb);
                    let mut locs = self.map.data_peers_of_block(vb);
                    locs.push((pd, pdb));
                    if locs
                        .iter()
                        .any(|&(d, ddb)| self.disk_down(d, now) || self.stale[d].contains(&ddb))
                    {
                        return Err(());
                    }
                    let mut acc = vec![0u8; spb as usize * SECTOR_SIZE];
                    for &(d, ddb) in &locs {
                        xor_into(&mut acc, &self.block_bytes(d, ddb).map_err(|_| ())?);
                        reads.push((d, ddb * spb, spb as u32));
                    }
                    acc
                };
                Ok(Some((reads, bytes)))
            }
            Redundancy::None => Ok(None),
        }
    }

    /// Drain stale sets under the windowed budget, lowest serving disk
    /// first, lowest block first.
    fn rebuild_tick(&mut self, now: SimTime) {
        let spb = self.map.sectors_per_block();
        let Some(i) =
            (0..self.disks.len()).find(|&i| !self.stale[i].is_empty() && !self.disk_down(i, now))
        else {
            return;
        };
        let ops_per_item = match self.redundancy() {
            Redundancy::Mirror => 2u32,
            Redundancy::RotParity => self.disks.len() as u32,
            Redundancy::None => return,
        };
        let mut skipped: Vec<u64> = Vec::new();
        while let Some(m) = &mut self.maint {
            if m.budget.available(now) < ops_per_item {
                break;
            }
            let Some(db) = self.stale[i].pop_first() else {
                break;
            };
            match self.resilver_plan(i, db, now) {
                Ok(None) => continue, // unused slot: nothing to restore
                Err(()) => {
                    skipped.push(db);
                    continue;
                }
                Ok(Some((reads, bytes))) => {
                    let span = bytes.len() / SECTOR_SIZE;
                    let mut issued = 0u32;
                    for (rd, rs, rn) in reads {
                        if let Ok(id) = self.disks[rd].submit(IoRequest::read(0, rs, rn), now) {
                            self.maint_subs.insert((rd, id), MaintRole::RebuildRead);
                            issued += 1;
                        }
                    }
                    let w = IoRequest::write(0, db * spb, span as u32, Bytes::from(bytes.clone()));
                    match self.disks[i].submit(w, now) {
                        Ok(id) => {
                            self.pending.insert((i, db), (id, bytes));
                            self.maint_subs.insert((i, id), MaintRole::RebuildWrite(db));
                            issued += 1;
                        }
                        Err(_) => {
                            skipped.push(db);
                        }
                    }
                    let m = self.maint.as_mut().expect("redundant volume"); // abr-lint: allow(P001, rebuild_tick only runs on redundant volumes)
                    m.budget.consume(now, issued.max(1).min(ops_per_item));
                    with_registry(|r| r.inc(m.obs.rebuild_ops, u64::from(issued)));
                }
            }
        }
        for db in skipped {
            self.stale[i].insert(db);
        }
    }

    /// Scrub the next few redundancy groups when the array is idle and
    /// fully re-silvered: verify copies/parity, remap latent defects,
    /// rewrite lost or divergent blocks from the surviving redundancy.
    fn scrub_tick(&mut self, now: SimTime) {
        if !self.is_idle() || self.stale.iter().any(|s| !s.is_empty()) {
            return;
        }
        let Some(m) = &self.maint else { return };
        let groups = m.cfg.scrub_groups_per_window;
        let spb = self.map.sectors_per_block();
        let total = match self.redundancy() {
            Redundancy::Mirror => self.map.vol_sectors().div_ceil(spb),
            Redundancy::RotParity => {
                // One group per (row, offset): every disk-block index
                // shared across the members.
                let vol_blocks = self.map.vol_sectors() / spb;
                vol_blocks / (self.disks.len() as u64 - 1)
            }
            Redundancy::None => return,
        };
        if total == 0 {
            return;
        }
        for _ in 0..groups {
            let cursor = {
                let m = self.maint.as_mut().expect("redundant volume"); // abr-lint: allow(P001, scrub_tick only runs on redundant volumes)
                let c = m.scrub_cursor % total;
                m.scrub_cursor = (m.scrub_cursor + 1) % total;
                c
            };
            match self.redundancy() {
                Redundancy::Mirror => self.scrub_mirror_group(cursor, now),
                Redundancy::RotParity => self.scrub_parity_group(cursor, now),
                Redundancy::None => unreachable!(),
            }
        }
    }

    /// Remap any latent defects under block `db` of member `loc` and
    /// report whether the block needs rewriting (defective or lost).
    fn scrub_check_location(&mut self, loc: usize, db: u64) -> bool {
        let spb = self.map.sectors_per_block();
        let span = self.block_span(loc, db);
        let mut needs = false;
        if let Ok(segs) = self.disks[loc].physical_segments(0, db * spb, span) {
            let mut cleared = 0u32;
            for &(s, n) in &segs {
                if let Some(inj) = self.disks[loc].disk_mut().injector_mut() {
                    cleared += inj.remap(s, n);
                }
            }
            if cleared > 0 {
                needs = true;
                if let Some(m) = &self.maint {
                    with_registry(|r| r.inc(m.obs.scrub_defects, u64::from(cleared)));
                }
            }
        }
        if self.disks[loc].block_is_lost(0, db * spb) {
            needs = true;
        }
        needs
    }

    /// Issue a scrub repair write of `bytes` to block `db` of `loc`.
    fn scrub_repair(&mut self, loc: usize, db: u64, bytes: Vec<u8>, now: SimTime) {
        let spb = self.map.sectors_per_block();
        let span = (bytes.len() / SECTOR_SIZE) as u32;
        if let Ok(id) = self.disks[loc].submit(
            IoRequest::write(0, db * spb, span, Bytes::from(bytes.clone())),
            now,
        ) {
            self.pending.insert((loc, db), (id, bytes));
            self.maint_subs.insert((loc, id), MaintRole::ScrubWrite(db));
            if let Some(m) = &self.maint {
                with_registry(|r| r.inc(m.obs.scrub_repairs, 1));
            }
        }
    }

    /// Issue the scrub verification read for block `db` of `loc`.
    fn scrub_read(&mut self, loc: usize, db: u64, now: SimTime) {
        let spb = self.map.sectors_per_block();
        let span = self.block_span(loc, db);
        if let Ok(id) = self.disks[loc].submit(IoRequest::read(0, db * spb, span), now) {
            self.maint_subs.insert((loc, id), MaintRole::ScrubRead);
        }
    }

    /// One mirror scrub group: volume block `vb` and its copy.
    fn scrub_mirror_group(&mut self, vb: u64, now: SimTime) {
        let (d, db) = self.map.map_block(vb);
        let p = self.map.mirror_partner(d);
        if self.disk_down(d, now) || self.disk_down(p, now) {
            return;
        }
        if let Some(m) = &self.maint {
            with_registry(|r| r.inc(m.obs.scrub_groups, 1));
        }
        let mut needs = Vec::new();
        for loc in [d, p] {
            if self.scrub_check_location(loc, db) {
                needs.push(loc);
            }
        }
        // Divergence check through the pending-aware images.
        match (self.block_bytes(d, db), self.block_bytes(p, db)) {
            (Ok(a), Ok(b)) => {
                if a != b {
                    // Repair toward the data half: the primary wins.
                    if let Some(m) = &self.maint {
                        with_registry(|r| r.inc(m.obs.scrub_mismatches, 1));
                    }
                    if !needs.contains(&p) {
                        needs.push(p);
                    }
                }
            }
            (Err(_), Ok(_)) => {
                if !needs.contains(&d) {
                    needs.push(d);
                }
            }
            (Ok(_), Err(_)) => {
                if !needs.contains(&p) {
                    needs.push(p);
                }
            }
            (Err(_), Err(_)) => {} // both copies gone: surfaced via health
        }
        for loc in needs {
            let source = if loc == d { p } else { d };
            if let Ok(bytes) = self.block_bytes(source, db) {
                self.scrub_repair(loc, db, bytes, now);
            }
        }
        for loc in [d, p] {
            self.scrub_read(loc, db, now);
        }
    }

    /// One rotated-parity scrub group: disk block `db` across all
    /// members (one stripe row offset).
    fn scrub_parity_group(&mut self, db: u64, now: SimTime) {
        let n = self.disks.len();
        if (0..n).any(|i| self.disk_down(i, now)) {
            return;
        }
        if let Some(m) = &self.maint {
            with_registry(|r| r.inc(m.obs.scrub_groups, 1));
        }
        let pd = (db / self.map.policy().chunk_blocks() % n as u64) as usize;
        let mut needs = Vec::new();
        for loc in 0..n {
            if self.scrub_check_location(loc, db) {
                needs.push(loc);
            }
        }
        // Parity identity: XOR over the whole row (data + parity) is 0.
        let spb = self.map.sectors_per_block();
        let images: Vec<Result<Vec<u8>, DriverError>> =
            (0..n).map(|loc| self.block_bytes(loc, db)).collect();
        let unreadable: Vec<usize> = (0..n).filter(|&i| images[i].is_err()).collect();
        match unreadable.len() {
            0 => {
                let mut acc = vec![0u8; spb as usize * SECTOR_SIZE];
                for img in images.iter().flatten() {
                    xor_into(&mut acc, img);
                }
                if acc.iter().any(|&b| b != 0) {
                    // Repair toward the data: recompute the parity.
                    if let Some(m) = &self.maint {
                        with_registry(|r| r.inc(m.obs.scrub_mismatches, 1));
                    }
                    if !needs.contains(&pd) {
                        needs.push(pd);
                    }
                }
            }
            1 => {
                if !needs.contains(&unreadable[0]) {
                    needs.push(unreadable[0]);
                }
            }
            _ => return, // multiple failures: beyond single redundancy
        }
        for loc in needs {
            // Rebuild the location from the rest of the row.
            let mut acc = vec![0u8; spb as usize * SECTOR_SIZE];
            let mut ok = true;
            for other in 0..n {
                if other == loc {
                    continue;
                }
                match self.block_bytes(other, db) {
                    Ok(img) => xor_into(&mut acc, &img),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                self.scrub_repair(loc, db, acc, now);
            }
        }
        for loc in 0..n {
            self.scrub_read(loc, db, now);
        }
    }

    /// Snapshot array health and publish it to the `array.*` gauges.
    pub fn health(&mut self) -> ArrayHealth {
        let disks: Vec<DiskHealth> = self
            .disks
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let failed = d.disk().injector().is_some_and(|inj| inj.is_failed());
                DiskHealth {
                    disk: i as u32,
                    dead: d.disk().injector().is_some_and(|inj| inj.is_dead()),
                    failed,
                    degraded: d.is_degraded(),
                    rebuilding: !failed && !self.stale[i].is_empty(),
                    quarantined: d.quarantined_slots().count() as u32,
                    lost: d.lost_blocks().count() as u32,
                    placed: d.block_table().len() as u32,
                    stale: self.stale[i].len() as u32,
                }
            })
            .collect();
        let health = ArrayHealth { disks };
        with_registry(|r| {
            r.set_gauge(self.obs.dead, health.n_dead() as i64);
            r.set_gauge(self.obs.degraded, health.n_degraded() as i64);
            r.set_gauge(self.obs.lost, health.total_lost() as i64);
        });
        if let Some(m) = &self.maint {
            with_registry(|r| {
                r.set_gauge(m.obs.rebuild_pending, health.total_stale() as i64);
                r.set_gauge(m.obs.disks_rebuilding, health.n_rebuilding() as i64);
            });
        }
        health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_disk::fault::{FaultInjector, FaultPlan};
    use abr_disk::{models, Disk, DiskLabel};
    use abr_driver::{DriverConfig, SchedulerKind};
    use abr_sim::{SimDuration, SimRng};

    fn member(spb: u32) -> AdaptiveDriver {
        let model = models::toshiba_mk156f();
        let label = DiskLabel::rearranged_aligned(model.geometry, 8, spb);
        let cfg = DriverConfig {
            block_size: 8192,
            scheduler: SchedulerKind::Scan,
            monitor_capacity: 1 << 16,
            table_max_entries: 1024,
            ..DriverConfig::default()
        };
        let mut disk = Disk::new(model);
        AdaptiveDriver::format(&mut disk, &label, &cfg);
        AdaptiveDriver::attach(disk, cfg).expect("fresh format attaches")
    }

    fn volume(n: usize, policy: StripePolicy) -> ArrayVolume {
        ArrayVolume::new((0..n).map(|_| member(16)).collect(), policy)
    }

    fn red_volume(n: usize, policy: StripePolicy, red: Redundancy) -> ArrayVolume {
        ArrayVolume::with_redundancy(
            (0..n).map(|_| member(16)).collect(),
            policy,
            red,
            MaintenanceConfig::default(),
        )
    }

    fn block_payload(tag: u8) -> Bytes {
        Bytes::from(vec![tag; 16 * SECTOR_SIZE])
    }

    #[test]
    fn single_block_requests_route_to_one_disk() {
        let mut v = volume(4, StripePolicy::Striped { chunk_blocks: 1 });
        let t = SimTime::ZERO;
        // Block 0 → disk 0, block 1 → disk 1, ...
        for b in 0..4u64 {
            v.submit(IoRequest::read(0, b * 16, 16), t).unwrap();
        }
        for i in 0..4 {
            assert!(!v.disk(i).is_idle(), "disk {i} should hold one request");
        }
        let done = v.drain();
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|c| c.error.is_none() && c.n_subs == 1));
        assert!(v.is_idle());
    }

    #[test]
    fn raw_requests_split_and_merge() {
        let mut v = volume(2, StripePolicy::Striped { chunk_blocks: 1 });
        // 4 blocks starting mid-block: 5 pieces over both disks, one
        // volume completion when the last piece lands.
        let id = v
            .submit_raw(IoDir::Write, 8, 4 * 16, SimTime::ZERO)
            .unwrap();
        let done = v.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].n_subs, 5);
        assert!(done[0].error.is_none());
        assert_eq!(v.io_counts(0).submitted + v.io_counts(1).submitted, 5);
    }

    #[test]
    fn out_of_range_requests_are_rejected() {
        let mut v = volume(2, StripePolicy::Concat);
        let end = v.vol_sectors();
        assert_eq!(
            v.submit(IoRequest::read(0, end, 16), SimTime::ZERO),
            Err(DriverError::OutOfPartition)
        );
        assert_eq!(
            v.submit(IoRequest::read(1, 0, 16), SimTime::ZERO),
            Err(DriverError::BadPartition)
        );
        assert_eq!(
            v.submit(IoRequest::read(0, 0, 0), SimTime::ZERO),
            Err(DriverError::EmptyTransfer)
        );
    }

    #[test]
    fn completions_merge_in_time_order() {
        let mut v = volume(2, StripePolicy::Striped { chunk_blocks: 1 });
        let a = v.submit(IoRequest::read(0, 0, 16), SimTime::ZERO).unwrap();
        let b = v.submit(IoRequest::read(0, 16, 16), SimTime::ZERO).unwrap();
        let done = v.drain();
        assert_eq!(done.len(), 2);
        assert!(done[0].completed <= done[1].completed);
        let ids: Vec<VolRequestId> = done.iter().map(|c| c.id).collect();
        assert!(ids.contains(&a) && ids.contains(&b));
    }

    #[test]
    fn health_reports_every_disk() {
        let mut v = volume(3, StripePolicy::Concat);
        let h = v.health();
        assert_eq!(h.disks.len(), 3);
        assert!(h.is_fully_healthy());
        assert_eq!(h.n_healthy(), 3);
        assert_eq!(h.n_dead(), 0);
        assert_eq!(h.n_failed(), 0);
        assert_eq!(h.n_rebuilding(), 0);
        assert_eq!(h.total_lost(), 0);
    }

    #[test]
    fn disk_indices_are_stamped_on_members() {
        let v = volume(3, StripePolicy::Concat);
        for i in 0..3 {
            assert_eq!(v.disk(i).disk_index(), i as u32);
        }
    }

    #[test]
    fn mirror_write_duplicates_to_partner() {
        let mut v = red_volume(
            4,
            StripePolicy::Striped { chunk_blocks: 1 },
            Redundancy::Mirror,
        );
        let id = v
            .submit(
                IoRequest::write(0, 0, 16, block_payload(0xAB)),
                SimTime::ZERO,
            )
            .unwrap();
        let done = v.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].n_subs, 2, "primary + copy");
        assert!(done[0].error.is_none());
        let (d, db) = v.map().map_block(0);
        let p = v.map().mirror_partner(d);
        let a = v.disk(d).peek(0, db * 16, 16).unwrap();
        let b = v.disk(p).peek(0, db * 16, 16).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x == 0xAB));
    }

    #[test]
    fn rotparity_write_maintains_parity_identity() {
        let mut v = red_volume(
            3,
            StripePolicy::Striped { chunk_blocks: 1 },
            Redundancy::RotParity,
        );
        // Write both data blocks of row 0, then check XOR(all 3) == 0.
        for (vb, tag) in [(0u64, 0x11u8), (1, 0x22)] {
            v.submit(
                IoRequest::write(0, vb * 16, 16, block_payload(tag)),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let done = v.drain();
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|c| c.error.is_none() && c.n_subs == 2));
        let mut acc = vec![0u8; 16 * SECTOR_SIZE];
        for disk in 0..3 {
            let img = v.disk(disk).peek(0, 0, 16).unwrap();
            xor_into(&mut acc, &img);
        }
        assert!(acc.iter().all(|&b| b == 0), "parity identity violated");
    }

    #[test]
    fn mirror_read_survives_whole_disk_death() {
        let mut v = red_volume(
            2,
            StripePolicy::Striped { chunk_blocks: 1 },
            Redundancy::Mirror,
        );
        v.submit(
            IoRequest::write(0, 0, 16, block_payload(0x7E)),
            SimTime::ZERO,
        )
        .unwrap();
        v.drain();
        // Kill disk 0 (the data half) at t=1s.
        let death = SimTime::from_micros(1_000_000);
        let plan = FaultPlan::disk_death(death, SimDuration::from_secs(60));
        v.disk_mut(0)
            .disk_mut()
            .set_injector(Some(FaultInjector::new(
                plan,
                SimRng::new(9).substream("faults"),
            )));
        // A read submitted after the death routes to the partner and
        // completes clean.
        let after = SimTime::from_micros(2_000_000);
        let id = v.submit(IoRequest::read(0, 0, 16), after).unwrap();
        let done = v.drain();
        let c = done.iter().find(|c| c.id == id).expect("read completed");
        assert!(c.error.is_none(), "degraded read failed: {:?}", c.error);
        assert_eq!(v.io_counts(1).submitted, 2, "copy write + degraded read");
    }

    #[test]
    fn rotparity_read_reconstructs_after_death() {
        let mut v = red_volume(
            3,
            StripePolicy::Striped { chunk_blocks: 1 },
            Redundancy::RotParity,
        );
        for (vb, tag) in [(0u64, 0x0F), (1, 0xF0)] {
            v.submit(
                IoRequest::write(0, vb * 16, 16, block_payload(tag)),
                SimTime::ZERO,
            )
            .unwrap();
        }
        v.drain();
        // Block 0 lives on disk 1 (row 0 parity is disk 0). Kill disk 1.
        let death = SimTime::from_micros(1_000_000);
        let plan = FaultPlan::disk_death(death, SimDuration::from_secs(60));
        v.disk_mut(1)
            .disk_mut()
            .set_injector(Some(FaultInjector::new(
                plan,
                SimRng::new(3).substream("faults"),
            )));
        let after = SimTime::from_micros(2_000_000);
        let id = v.submit(IoRequest::read(0, 0, 16), after).unwrap();
        let done = v.drain();
        let c = done.iter().find(|c| c.id == id).expect("read completed");
        assert!(c.error.is_none(), "reconstruction failed: {:?}", c.error);
        assert_eq!(c.n_subs, 2, "peer + parity reconstruction reads");
        // The logical bytes are still reconstructable and correct.
        let img = v.logical_block(0).unwrap();
        assert!(img.iter().all(|&b| b == 0x0F));
    }

    #[test]
    fn writes_during_outage_go_stale_and_resilver() {
        let mut v = red_volume(
            2,
            StripePolicy::Striped { chunk_blocks: 1 },
            Redundancy::Mirror,
        );
        v.submit(
            IoRequest::write(0, 0, 16, block_payload(0x01)),
            SimTime::ZERO,
        )
        .unwrap();
        v.drain();
        let death = SimTime::from_micros(1_000_000);
        let plan = FaultPlan::disk_death(death, SimDuration::from_secs(1));
        v.disk_mut(0)
            .disk_mut()
            .set_injector(Some(FaultInjector::new(
                plan,
                SimRng::new(5).substream("faults"),
            )));
        // Write after the death: only the partner gets it; disk 0 goes
        // stale.
        let after = SimTime::from_micros(2_000_000);
        let id = v
            .submit(IoRequest::write(0, 0, 16, block_payload(0x02)), after)
            .unwrap();
        let done = v.drain();
        let c = done.iter().find(|c| c.id == id).expect("write completed");
        assert!(c.error.is_none());
        assert_eq!(v.stale_blocks(0), 1);
        // Replace the dead disk; the whole data half re-silvers.
        v.replace_disk(0, member(16));
        assert!(v.stale_blocks(0) > 1, "full replacement content is stale");
        let mut t = SimTime::from_micros(3_000_000);
        for _ in 0..10_000 {
            if v.rebuild_pending() == 0 && v.is_idle() {
                break;
            }
            v.maintenance_tick(t);
            while let Some(ct) = v.next_completion() {
                v.complete_next(ct);
            }
            t += SimDuration::from_secs(10);
        }
        assert_eq!(v.rebuild_pending(), 0, "rebuild drained");
        // The resilvered copy matches the survivor.
        let a = v.disk(0).peek(0, 0, 16).unwrap();
        assert!(a.iter().all(|&x| x == 0x02), "replacement has fresh data");
        let h = v.health();
        assert!(h.n_rebuilding() == 0);
    }

    #[test]
    fn scrub_repairs_mirror_divergence() {
        let mut v = red_volume(
            2,
            StripePolicy::Striped { chunk_blocks: 1 },
            Redundancy::Mirror,
        );
        v.submit(
            IoRequest::write(0, 0, 16, block_payload(0x55)),
            SimTime::ZERO,
        )
        .unwrap();
        v.drain();
        // Corrupt the copy behind the volume's back.
        let (d, db) = v.map().map_block(0);
        let p = v.map().mirror_partner(d);
        let seg = v.disk(p).physical_segments(0, db * 16, 16).unwrap()[0];
        v.disk_mut(p)
            .disk_mut()
            .store_mut()
            .write(seg.0, &vec![0xEE; 16 * SECTOR_SIZE]);
        assert_ne!(
            v.disk(d).peek(0, db * 16, 16).unwrap(),
            v.disk(p).peek(0, db * 16, 16).unwrap()
        );
        // Scrub sweeps group 0 (block 0) in the first window.
        let mut t = SimTime::from_micros(1_000_000);
        for _ in 0..4 {
            v.maintenance_tick(t);
            v.drain();
            t += SimDuration::from_secs(10);
        }
        assert_eq!(
            v.disk(d).peek(0, db * 16, 16).unwrap(),
            v.disk(p).peek(0, db * 16, 16).unwrap(),
            "scrub repaired the divergent copy"
        );
    }

    #[test]
    fn plain_volume_has_no_redundancy_metrics_or_maintenance() {
        let mut v = volume(2, StripePolicy::Concat);
        assert!(!v.has_maintenance());
        assert_eq!(v.rebuild_pending(), 0);
        // Maintenance tick is a no-op.
        v.maintenance_tick(SimTime::from_micros(1));
        assert!(v.is_idle());
    }
}
