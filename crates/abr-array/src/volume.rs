//! The volume: N adaptive drivers behind one block address space.
//!
//! [`ArrayVolume`] mirrors the `AdaptiveDriver` submit/complete surface
//! so the experiment loop drives a volume exactly like a single disk.
//! Incoming requests are mapped through the [`StripeMap`]
//! (single-block requests land wholly on one disk; the raw path splits
//! multi-block transfers into per-disk sub-requests), and completions
//! are merged back in simulated-time order.
//!
//! Determinism invariant: when several disks complete at the same
//! simulated instant, [`ArrayVolume::complete_next`] always retires the
//! lowest disk index first. Combined with the stateless stripe map this
//! keeps every array run byte-identical regardless of host threading.

use crate::stripe::{StripeMap, StripePolicy};
use abr_driver::request::IoDir;
use abr_driver::{AdaptiveDriver, DriverError, IoRequest, RequestId};
use abr_obs::{with_registry, CounterId, GaugeId};
use abr_sim::SimTime;
use std::collections::HashMap; // abr-lint: allow(D001, request bookkeeping; keyed insert/remove only, completion order is driven by sorted member queues)

/// Opaque identifier of a volume-level request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VolRequestId(pub u64);

/// A finished volume request: all of its per-disk sub-requests have
/// completed, merged in sim time.
#[derive(Debug, Clone)]
pub struct VolCompletion {
    /// The volume request's id.
    pub id: VolRequestId,
    /// When the volume accepted the request.
    pub arrived: SimTime,
    /// When the *last* sub-request completed.
    pub completed: SimTime,
    /// How many per-disk sub-requests the request was split into.
    pub n_subs: u32,
    /// First error any sub-request reported, if any.
    pub error: Option<DriverError>,
}

/// Health of one member disk, as reported by [`ArrayVolume::health`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct DiskHealth {
    /// Disk index within the array.
    pub disk: u32,
    /// The disk is powered off (a `FaultPlan` power cut fired).
    pub dead: bool,
    /// The driver is in degraded pass-through mode (block table
    /// unreadable); rearrangement is disabled but I/O still flows.
    pub degraded: bool,
    /// Quarantined reserved-area slots.
    pub quarantined: u32,
    /// Blocks whose freshest copy was lost to a hard error.
    pub lost: u32,
    /// Blocks currently placed in this disk's reserved area.
    pub placed: u32,
}

impl DiskHealth {
    /// A disk that needs operator attention: dead, degraded, or with
    /// data loss.
    pub fn impaired(&self) -> bool {
        self.dead || self.degraded || self.lost > 0
    }
}

/// Array-level health summary.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ArrayHealth {
    /// Per-disk state, indexed by disk.
    pub disks: Vec<DiskHealth>,
}

impl ArrayHealth {
    /// Disks currently serving normally (not dead, not degraded).
    pub fn n_healthy(&self) -> usize {
        self.disks.iter().filter(|d| !d.dead && !d.degraded).count()
    }

    /// Disks that are powered off.
    pub fn n_dead(&self) -> usize {
        self.disks.iter().filter(|d| d.dead).count()
    }

    /// Disks in degraded pass-through mode.
    pub fn n_degraded(&self) -> usize {
        self.disks.iter().filter(|d| d.degraded).count()
    }

    /// Total lost blocks across the array.
    pub fn total_lost(&self) -> u64 {
        self.disks.iter().map(|d| u64::from(d.lost)).sum()
    }

    /// Whether every disk is serving normally with no data loss.
    pub fn is_fully_healthy(&self) -> bool {
        self.disks.iter().all(|d| !d.impaired())
    }
}

/// Per-request bookkeeping while sub-requests are outstanding.
#[derive(Debug)]
struct Inflight {
    remaining: u32,
    n_subs: u32,
    arrived: SimTime,
    error: Option<DriverError>,
}

/// Registry handles for the `array.*` metric family.
struct ArrayObs {
    requests: CounterId,
    subrequests: CounterId,
    dead: GaugeId,
    degraded: GaugeId,
    lost: GaugeId,
    per_disk: Vec<DiskObs>,
}

struct DiskObs {
    submitted: CounterId,
    completed: CounterId,
    failed: CounterId,
}

impl ArrayObs {
    fn resolve(n_disks: usize) -> Self {
        with_registry(|r| {
            let disks = r.gauge("array.disks");
            r.set_gauge(disks, n_disks as i64);
            ArrayObs {
                requests: r.counter("array.requests"),
                subrequests: r.counter("array.subrequests"),
                dead: r.gauge("array.disks.dead"),
                degraded: r.gauge("array.disks.degraded"),
                lost: r.gauge("array.blocks.lost"),
                per_disk: (0..n_disks)
                    .map(|i| DiskObs {
                        submitted: r.counter(&format!("array.disk.{i}.submitted")),
                        completed: r.counter(&format!("array.disk.{i}.completed")),
                        failed: r.counter(&format!("array.disk.{i}.failed")),
                    })
                    .collect(),
            }
        })
    }
}

/// Plain per-disk I/O tallies, independent of the registry, for tests
/// and reports that need exact counts from a specific volume instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct DiskIoCounts {
    /// Sub-requests submitted to this disk.
    pub submitted: u64,
    /// Sub-requests that completed successfully.
    pub completed: u64,
    /// Sub-requests that completed with an error.
    pub failed: u64,
}

/// N adaptive drivers behind one block address space.
pub struct ArrayVolume {
    disks: Vec<AdaptiveDriver>,
    map: StripeMap,
    next_id: u64,
    subs: HashMap<(usize, RequestId), u64>, // abr-lint: allow(D001, keyed lookup only; never iterated)
    inflight: HashMap<u64, Inflight>, // abr-lint: allow(D001, keyed lookup only; never iterated)
    io_counts: Vec<DiskIoCounts>,
    obs: ArrayObs,
}

impl std::fmt::Debug for ArrayVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayVolume")
            .field("n_disks", &self.disks.len())
            .field("policy", &self.map.policy())
            .field("vol_sectors", &self.map.vol_sectors())
            .finish_non_exhaustive()
    }
}

impl ArrayVolume {
    /// Assemble a volume from identically-formatted member drivers.
    ///
    /// Each driver's disk index is stamped so its request spans and
    /// metrics carry the per-disk label dimension.
    ///
    /// # Panics
    /// If `disks` is empty or the members disagree on partition size or
    /// block size (heterogeneous arrays are out of scope).
    pub fn new(mut disks: Vec<AdaptiveDriver>, policy: StripePolicy) -> Self {
        assert!(!disks.is_empty(), "a volume needs at least one disk");
        let per_disk_sectors = disks[0].label().partitions[0].n_sectors;
        let spb = disks[0].sectors_per_block();
        for (i, d) in disks.iter_mut().enumerate() {
            assert_eq!(
                d.label().partitions[0].n_sectors,
                per_disk_sectors,
                "disk {i} partition size differs"
            );
            assert_eq!(d.sectors_per_block(), spb, "disk {i} block size differs");
            d.set_disk_index(i as u32);
        }
        let map = StripeMap::new(policy, disks.len(), per_disk_sectors, spb);
        #[cfg(feature = "sanitize")]
        if let Err(e) = map.check_chunk_permutation() {
            panic!("stripe map is not a chunk permutation: {e}");
        }
        let obs = ArrayObs::resolve(disks.len());
        let n = disks.len();
        ArrayVolume {
            disks,
            map,
            next_id: 0,
            subs: HashMap::new(), // abr-lint: allow(D001, keyed lookup only; never iterated)
            inflight: HashMap::new(), // abr-lint: allow(D001, keyed lookup only; never iterated)
            io_counts: vec![DiskIoCounts::default(); n],
            obs,
        }
    }

    /// The stripe map in force.
    pub fn map(&self) -> &StripeMap {
        &self.map
    }

    /// Number of member disks.
    pub fn n_disks(&self) -> usize {
        self.disks.len()
    }

    /// Total sectors the volume exposes (partition 0 of the array).
    pub fn vol_sectors(&self) -> u64 {
        self.map.vol_sectors()
    }

    /// A member driver.
    pub fn disk(&self, i: usize) -> &AdaptiveDriver {
        &self.disks[i]
    }

    /// A member driver, mutably — for the per-disk rearrangement
    /// daemons and fault-plan installation.
    pub fn disk_mut(&mut self, i: usize) -> &mut AdaptiveDriver {
        &mut self.disks[i]
    }

    /// Exact per-disk sub-request tallies for this volume instance.
    pub fn io_counts(&self, i: usize) -> DiskIoCounts {
        self.io_counts[i]
    }

    /// Submit a block-interface request against the volume's address
    /// space. Like the single-disk driver, the request must not cross a
    /// file-system block boundary — which guarantees it maps onto
    /// exactly one member disk.
    pub fn submit(&mut self, req: IoRequest, now: SimTime) -> Result<VolRequestId, DriverError> {
        if req.partition != 0 {
            return Err(DriverError::BadPartition);
        }
        if req.n_sectors == 0 {
            return Err(DriverError::EmptyTransfer);
        }
        let end = req
            .sector_in_partition
            .checked_add(u64::from(req.n_sectors))
            .ok_or(DriverError::OutOfPartition)?;
        if end > self.map.vol_sectors() {
            return Err(DriverError::OutOfPartition);
        }
        let (disk, sector) = self.map.map_sector(req.sector_in_partition);
        let sub = IoRequest {
            sector_in_partition: sector,
            ..req
        };
        let sub_id = self.disks[disk].submit(sub, now)?;
        Ok(self.admit(now, vec![(disk, sub_id)]))
    }

    /// Submit a raw transfer of `n_sectors` starting at `sector`,
    /// splitting it into one sub-request per file-system block (the
    /// same split the single-disk driver's raw path performs) and
    /// fanning the pieces out to their home disks.
    pub fn submit_raw(
        &mut self,
        dir: IoDir,
        sector: u64,
        n_sectors: u32,
        now: SimTime,
    ) -> Result<VolRequestId, DriverError> {
        if n_sectors == 0 {
            return Err(DriverError::EmptyTransfer);
        }
        let end = sector
            .checked_add(u64::from(n_sectors))
            .ok_or(DriverError::OutOfPartition)?;
        if end > self.map.vol_sectors() {
            return Err(DriverError::OutOfPartition);
        }
        let spb = self.map.sectors_per_block() as u32;
        let mut placed: Vec<(usize, RequestId)> = Vec::new();
        for (s, n) in abr_driver::physio::split(sector, n_sectors, spb) {
            let (disk, dsector) = self.map.map_sector(s);
            let sub = match dir {
                IoDir::Read => IoRequest::read(0, dsector, n),
                IoDir::Write => IoRequest::write_zeroes(0, dsector, n),
            };
            match self.disks[disk].submit(sub, now) {
                Ok(id) => placed.push((disk, id)),
                Err(e) => {
                    // Piece rejected up front (it never reached a
                    // queue): orphan the accepted pieces — they will
                    // complete and be dropped — and report the error.
                    for (d, id) in placed {
                        self.subs.remove(&(d, id));
                    }
                    return Err(e);
                }
            }
        }
        Ok(self.admit(now, placed))
    }

    /// Record an accepted request and its sub-requests.
    fn admit(&mut self, now: SimTime, pieces: Vec<(usize, RequestId)>) -> VolRequestId {
        let vol = self.next_id;
        self.next_id += 1;
        let n_subs = pieces.len() as u32;
        for (disk, id) in pieces {
            self.subs.insert((disk, id), vol);
            self.io_counts[disk].submitted += 1;
            with_registry(|r| {
                r.inc(self.obs.per_disk[disk].submitted, 1);
                r.inc(self.obs.subrequests, 1);
            });
        }
        with_registry(|r| r.inc(self.obs.requests, 1));
        self.inflight.insert(
            vol,
            Inflight {
                remaining: n_subs,
                n_subs,
                arrived: now,
                error: None,
            },
        );
        VolRequestId(vol)
    }

    /// When the next sub-request anywhere in the array will complete.
    /// Idle disks with queued work dispatch here, exactly like the
    /// single-disk driver's `next_completion`.
    pub fn next_completion(&mut self) -> Option<SimTime> {
        self.disks
            .iter_mut()
            .filter_map(|d| d.next_completion())
            .min()
    }

    /// Retire the sub-request completing at `now` (ties broken by
    /// lowest disk index). Returns the volume-level completion if this
    /// was its request's last outstanding piece.
    ///
    /// # Panics
    /// If no disk has a completion at exactly `now` — same contract as
    /// the single-disk driver.
    pub fn complete_next(&mut self, now: SimTime) -> Option<VolCompletion> {
        let disk = (0..self.disks.len())
            .find(|&i| self.disks[i].next_completion() == Some(now))
            .expect("no completion at this time");
        let c = self.disks[disk].complete_next(now);
        if c.is_ok() {
            self.io_counts[disk].completed += 1;
            with_registry(|r| r.inc(self.obs.per_disk[disk].completed, 1));
        } else {
            self.io_counts[disk].failed += 1;
            with_registry(|r| r.inc(self.obs.per_disk[disk].failed, 1));
        }
        let vol = self.subs.remove(&(disk, c.id))?;
        let inflight = self
            .inflight
            .get_mut(&vol)
            .expect("sub-request maps to a live request");
        inflight.remaining -= 1;
        if inflight.error.is_none() {
            inflight.error = c.error;
        }
        if inflight.remaining > 0 {
            return None;
        }
        let done = self.inflight.remove(&vol).expect("checked above");
        Some(VolCompletion {
            id: VolRequestId(vol),
            arrived: done.arrived,
            completed: now,
            n_subs: done.n_subs,
            error: done.error,
        })
    }

    /// Run every member to completion, returning merged volume
    /// completions in sim-time order.
    pub fn drain(&mut self) -> Vec<VolCompletion> {
        let mut out = Vec::new();
        while let Some(t) = self.next_completion() {
            if let Some(vc) = self.complete_next(t) {
                out.push(vc);
            }
        }
        out
    }

    /// Outstanding sub-requests across all member queues.
    pub fn queue_len(&self) -> usize {
        self.disks.iter().map(|d| d.queue_len()).sum()
    }

    /// Whether every member is idle.
    pub fn is_idle(&self) -> bool {
        self.disks.iter().all(|d| d.is_idle())
    }

    /// Snapshot array health and publish it to the `array.*` gauges.
    pub fn health(&mut self) -> ArrayHealth {
        let disks: Vec<DiskHealth> = self
            .disks
            .iter()
            .enumerate()
            .map(|(i, d)| DiskHealth {
                disk: i as u32,
                dead: d.disk().injector().is_some_and(|inj| inj.is_dead()),
                degraded: d.is_degraded(),
                quarantined: d.quarantined_slots().count() as u32,
                lost: d.lost_blocks().count() as u32,
                placed: d.block_table().len() as u32,
            })
            .collect();
        let health = ArrayHealth { disks };
        with_registry(|r| {
            r.set_gauge(self.obs.dead, health.n_dead() as i64);
            r.set_gauge(self.obs.degraded, health.n_degraded() as i64);
            r.set_gauge(self.obs.lost, health.total_lost() as i64);
        });
        health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_disk::{models, Disk, DiskLabel};
    use abr_driver::{DriverConfig, SchedulerKind};

    fn member(spb: u32) -> AdaptiveDriver {
        let model = models::toshiba_mk156f();
        let label = DiskLabel::rearranged_aligned(model.geometry, 8, spb);
        let cfg = DriverConfig {
            block_size: 8192,
            scheduler: SchedulerKind::Scan,
            monitor_capacity: 1 << 16,
            table_max_entries: 1024,
        };
        let mut disk = Disk::new(model);
        AdaptiveDriver::format(&mut disk, &label, &cfg);
        AdaptiveDriver::attach(disk, cfg).expect("fresh format attaches")
    }

    fn volume(n: usize, policy: StripePolicy) -> ArrayVolume {
        ArrayVolume::new((0..n).map(|_| member(16)).collect(), policy)
    }

    #[test]
    fn single_block_requests_route_to_one_disk() {
        let mut v = volume(4, StripePolicy::Striped { chunk_blocks: 1 });
        let t = SimTime::ZERO;
        // Block 0 → disk 0, block 1 → disk 1, ...
        for b in 0..4u64 {
            v.submit(IoRequest::read(0, b * 16, 16), t).unwrap();
        }
        for i in 0..4 {
            assert!(!v.disk(i).is_idle(), "disk {i} should hold one request");
        }
        let done = v.drain();
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|c| c.error.is_none() && c.n_subs == 1));
        assert!(v.is_idle());
    }

    #[test]
    fn raw_requests_split_and_merge() {
        let mut v = volume(2, StripePolicy::Striped { chunk_blocks: 1 });
        // 4 blocks starting mid-block: 5 pieces over both disks, one
        // volume completion when the last piece lands.
        let id = v
            .submit_raw(IoDir::Write, 8, 4 * 16, SimTime::ZERO)
            .unwrap();
        let done = v.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].n_subs, 5);
        assert!(done[0].error.is_none());
        assert_eq!(v.io_counts(0).submitted + v.io_counts(1).submitted, 5);
    }

    #[test]
    fn out_of_range_requests_are_rejected() {
        let mut v = volume(2, StripePolicy::Concat);
        let end = v.vol_sectors();
        assert_eq!(
            v.submit(IoRequest::read(0, end, 16), SimTime::ZERO),
            Err(DriverError::OutOfPartition)
        );
        assert_eq!(
            v.submit(IoRequest::read(1, 0, 16), SimTime::ZERO),
            Err(DriverError::BadPartition)
        );
        assert_eq!(
            v.submit(IoRequest::read(0, 0, 0), SimTime::ZERO),
            Err(DriverError::EmptyTransfer)
        );
    }

    #[test]
    fn completions_merge_in_time_order() {
        let mut v = volume(2, StripePolicy::Striped { chunk_blocks: 1 });
        let a = v.submit(IoRequest::read(0, 0, 16), SimTime::ZERO).unwrap();
        let b = v.submit(IoRequest::read(0, 16, 16), SimTime::ZERO).unwrap();
        let done = v.drain();
        assert_eq!(done.len(), 2);
        assert!(done[0].completed <= done[1].completed);
        let ids: Vec<VolRequestId> = done.iter().map(|c| c.id).collect();
        assert!(ids.contains(&a) && ids.contains(&b));
    }

    #[test]
    fn health_reports_every_disk() {
        let mut v = volume(3, StripePolicy::Concat);
        let h = v.health();
        assert_eq!(h.disks.len(), 3);
        assert!(h.is_fully_healthy());
        assert_eq!(h.n_healthy(), 3);
        assert_eq!(h.n_dead(), 0);
        assert_eq!(h.total_lost(), 0);
    }

    #[test]
    fn disk_indices_are_stamped_on_members() {
        let v = volume(3, StripePolicy::Concat);
        for i in 0..3 {
            assert_eq!(v.disk(i).disk_index(), i as u32);
        }
    }
}
