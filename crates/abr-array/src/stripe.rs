//! Striping policies: how a volume's flat block address space is laid
//! out over N member disks.
//!
//! All three policies work in units of file-system *blocks* (the
//! adaptive driver rejects any request crossing a block boundary, so a
//! block is the largest unit a single request can touch). A *chunk* is
//! a run of consecutive volume blocks kept together on one disk;
//! sub-block offsets are preserved, so a request never straddles two
//! disks.
//!
//! The map is fully determined by `(policy, n_disks, per-disk size)` at
//! construction — no state updates on the I/O path — which is what
//! makes array runs byte-identical across thread counts.

use serde::{Deserialize, Serialize};

/// How volume blocks are distributed over the member disks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StripePolicy {
    /// Classic RAID-0: chunk `c` of the volume lives on disk
    /// `c mod N`, round-robin.
    Striped {
        /// Chunk size in file-system blocks (≥ 1).
        chunk_blocks: u64,
    },
    /// Concatenation (linear/JBOD): disk 0's blocks first, then disk
    /// 1's, and so on.
    Concat,
    /// Hash-sharded: each chunk's home disk is chosen by a fixed
    /// integer hash of its index, with linear probing onto the next
    /// disk once a disk is full. Spreads sequential runs like striping
    /// but without the rigid round-robin phase.
    HashShard {
        /// Chunk size in file-system blocks (≥ 1).
        chunk_blocks: u64,
    },
}

impl StripePolicy {
    /// Short policy name for reports and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            StripePolicy::Striped { .. } => "striped",
            StripePolicy::Concat => "concat",
            StripePolicy::HashShard { .. } => "hash",
        }
    }

    /// The chunk size in blocks (1 for concatenation, where the "chunk"
    /// is a whole disk).
    pub fn chunk_blocks(&self) -> u64 {
        match self {
            StripePolicy::Striped { chunk_blocks } | StripePolicy::HashShard { chunk_blocks } => {
                *chunk_blocks
            }
            StripePolicy::Concat => 1,
        }
    }
}

/// SplitMix64 finalizer — the same fixed integer hash `SimRng` uses for
/// substream derivation, reused here to shard chunks.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A precomputed volume-to-disk address map.
///
/// For `n_disks == 1` every policy is the identity map and the volume
/// exposes the member's partition size *exactly* — including a trailing
/// partial block — so a one-disk volume is byte-identical to driving
/// the disk directly. For `n_disks > 1` the volume exposes only whole
/// chunks (each disk's tail blocks that don't fill a chunk are unused).
#[derive(Debug, Clone)]
pub struct StripeMap {
    policy: StripePolicy,
    n_disks: usize,
    sectors_per_block: u64,
    per_disk_blocks: u64,
    vol_sectors: u64,
    chunk_blocks: u64,
    /// `HashShard` only: chunk index → home disk.
    shard_disk: Vec<u32>,
    /// `HashShard` only: chunk index → chunk slot on its home disk.
    shard_slot: Vec<u64>,
}

impl StripeMap {
    /// Build the map for `n_disks` identical members, each exposing
    /// `per_disk_sectors` sectors of partition 0.
    ///
    /// # Panics
    /// If `n_disks == 0`, the chunk size is 0, or a disk is too small
    /// to hold even one chunk.
    pub fn new(
        policy: StripePolicy,
        n_disks: usize,
        per_disk_sectors: u64,
        sectors_per_block: u32,
    ) -> Self {
        assert!(n_disks >= 1, "a volume needs at least one disk");
        let spb = u64::from(sectors_per_block);
        assert!(spb >= 1);
        let per_disk_blocks = per_disk_sectors / spb;
        let chunk_blocks = policy.chunk_blocks();
        assert!(chunk_blocks >= 1, "chunk size must be at least one block");

        let mut map = StripeMap {
            policy,
            n_disks,
            sectors_per_block: spb,
            per_disk_blocks,
            vol_sectors: 0,
            chunk_blocks,
            shard_disk: Vec::new(),
            shard_slot: Vec::new(),
        };
        if n_disks == 1 {
            // Identity: expose the partition exactly, trailing partial
            // block included.
            map.vol_sectors = per_disk_sectors;
            return map;
        }
        match policy {
            StripePolicy::Concat => {
                map.vol_sectors = n_disks as u64 * per_disk_blocks * spb;
            }
            StripePolicy::Striped { .. } | StripePolicy::HashShard { .. } => {
                let chunks_per_disk = per_disk_blocks / chunk_blocks;
                assert!(
                    chunks_per_disk >= 1,
                    "chunk of {chunk_blocks} blocks does not fit a {per_disk_blocks}-block disk"
                );
                let total_chunks = n_disks as u64 * chunks_per_disk;
                map.vol_sectors = total_chunks * chunk_blocks * spb;
                if matches!(policy, StripePolicy::HashShard { .. }) {
                    let mut fill = vec![0u64; n_disks];
                    map.shard_disk.reserve(total_chunks as usize);
                    map.shard_slot.reserve(total_chunks as usize);
                    for chunk in 0..total_chunks {
                        let mut d = (splitmix64(chunk) % n_disks as u64) as usize;
                        while fill[d] == chunks_per_disk {
                            d = (d + 1) % n_disks;
                        }
                        map.shard_disk.push(abr_sim::narrow::u32_from_usize(d));
                        map.shard_slot.push(fill[d]);
                        fill[d] += 1;
                    }
                }
            }
        }
        map
    }

    /// The policy this map implements.
    pub fn policy(&self) -> StripePolicy {
        self.policy
    }

    /// Number of member disks.
    pub fn n_disks(&self) -> usize {
        self.n_disks
    }

    /// Total sectors the volume exposes.
    pub fn vol_sectors(&self) -> u64 {
        self.vol_sectors
    }

    /// Sectors per file-system block.
    pub fn sectors_per_block(&self) -> u64 {
        self.sectors_per_block
    }

    /// Map a volume block index to `(disk index, disk block index)`.
    pub fn map_block(&self, vblock: u64) -> (usize, u64) {
        if self.n_disks == 1 {
            return (0, vblock);
        }
        match self.policy {
            StripePolicy::Striped { .. } => {
                let chunk = vblock / self.chunk_blocks;
                let within = vblock % self.chunk_blocks;
                let disk = (chunk % self.n_disks as u64) as usize;
                let slot = chunk / self.n_disks as u64;
                (disk, slot * self.chunk_blocks + within)
            }
            StripePolicy::Concat => (
                (vblock / self.per_disk_blocks) as usize,
                vblock % self.per_disk_blocks,
            ),
            StripePolicy::HashShard { .. } => {
                let chunk = vblock / self.chunk_blocks;
                let within = vblock % self.chunk_blocks;
                let disk = self.shard_disk[chunk as usize] as usize;
                let slot = self.shard_slot[chunk as usize];
                (disk, slot * self.chunk_blocks + within)
            }
        }
    }

    /// Check that the map sends the volume's chunks onto the member
    /// disks' chunk slots as a permutation — every `(disk, slot)` pair
    /// hit exactly once, none out of bounds. Sanitize builds only.
    #[cfg(feature = "sanitize")]
    pub fn check_chunk_permutation(&self) -> Result<(), String> {
        if self.n_disks == 1 {
            return Ok(()); // identity by construction
        }
        let chunks_per_disk = match self.policy {
            StripePolicy::Concat => self.per_disk_blocks,
            _ => self.per_disk_blocks / self.chunk_blocks,
        };
        let vol_chunks = self.vol_sectors / (self.chunk_blocks * self.sectors_per_block);
        let ids = (0..vol_chunks).map(|chunk| {
            let (disk, dblock) = self.map_block(chunk * self.chunk_blocks);
            let slot = dblock / self.chunk_blocks;
            disk as u64 * chunks_per_disk + slot
        });
        abr_lint::sanitize::check_permutation(ids, self.n_disks as u64 * chunks_per_disk)
    }

    /// Map a volume sector to `(disk index, disk sector)`. The
    /// sub-block offset is preserved, so a request that fits in one
    /// volume block lands wholly on one disk.
    pub fn map_sector(&self, vsector: u64) -> (usize, u64) {
        let (disk, dblock) = self.map_block(vsector / self.sectors_per_block);
        (
            disk,
            dblock * self.sectors_per_block + vsector % self.sectors_per_block,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPB: u32 = 16;

    fn policies() -> Vec<StripePolicy> {
        vec![
            StripePolicy::Striped { chunk_blocks: 4 },
            StripePolicy::Striped { chunk_blocks: 1 },
            StripePolicy::Concat,
            StripePolicy::HashShard { chunk_blocks: 4 },
        ]
    }

    #[test]
    fn n1_is_the_identity_for_every_policy() {
        // 100 blocks plus a 7-sector partial tail; N=1 must expose it all.
        let per_disk = 100 * u64::from(SPB) + 7;
        for p in policies() {
            let m = StripeMap::new(p, 1, per_disk, SPB);
            assert_eq!(m.vol_sectors(), per_disk, "{p:?}");
            for v in [0, 1, 15, 16, 17, per_disk - 1] {
                assert_eq!(m.map_sector(v), (0, v), "{p:?} sector {v}");
            }
        }
    }

    #[test]
    fn every_policy_is_a_bijection_within_bounds() {
        let per_disk = 24 * u64::from(SPB);
        for p in policies() {
            for n in [2usize, 3, 4, 8] {
                let m = StripeMap::new(p, n, per_disk, SPB);
                let vol_blocks = m.vol_sectors() / u64::from(SPB);
                let mut seen = std::collections::HashSet::new();
                for vb in 0..vol_blocks {
                    let (d, db) = m.map_block(vb);
                    assert!(d < n, "{p:?} N={n}: disk {d} out of range");
                    assert!(
                        db < per_disk / u64::from(SPB),
                        "{p:?} N={n}: block {db} past end of disk"
                    );
                    assert!(seen.insert((d, db)), "{p:?} N={n}: ({d},{db}) mapped twice");
                }
            }
        }
    }

    #[test]
    fn chunks_stay_contiguous_on_one_disk() {
        let per_disk = 24 * u64::from(SPB);
        for p in policies() {
            let m = StripeMap::new(p, 4, per_disk, SPB);
            let cb = p.chunk_blocks();
            let vol_blocks = m.vol_sectors() / u64::from(SPB);
            for chunk in 0..vol_blocks / cb {
                let (d0, b0) = m.map_block(chunk * cb);
                for i in 1..cb {
                    let (d, b) = m.map_block(chunk * cb + i);
                    assert_eq!(d, d0, "{p:?}: chunk {chunk} split across disks");
                    assert_eq!(b, b0 + i, "{p:?}: chunk {chunk} not contiguous");
                }
            }
        }
    }

    #[test]
    fn striped_round_robins_across_disks() {
        let m = StripeMap::new(StripePolicy::Striped { chunk_blocks: 2 }, 3, 12 * 16, SPB);
        assert_eq!(m.map_block(0), (0, 0));
        assert_eq!(m.map_block(1), (0, 1));
        assert_eq!(m.map_block(2), (1, 0));
        assert_eq!(m.map_block(4), (2, 0));
        assert_eq!(m.map_block(6), (0, 2));
    }

    #[test]
    fn concat_fills_disks_in_order() {
        let m = StripeMap::new(StripePolicy::Concat, 2, 10 * 16, SPB);
        assert_eq!(m.map_block(0), (0, 0));
        assert_eq!(m.map_block(9), (0, 9));
        assert_eq!(m.map_block(10), (1, 0));
        assert_eq!(m.map_block(19), (1, 9));
    }

    #[test]
    fn hash_shard_balances_exactly() {
        let per_disk = 40 * u64::from(SPB);
        let m = StripeMap::new(
            StripePolicy::HashShard { chunk_blocks: 4 },
            4,
            per_disk,
            SPB,
        );
        let mut per = vec![0u64; 4];
        let vol_blocks = m.vol_sectors() / u64::from(SPB);
        for vb in (0..vol_blocks).step_by(4) {
            per[m.map_block(vb).0] += 1;
        }
        assert_eq!(per, vec![10, 10, 10, 10], "probing must fill every disk");
    }

    #[test]
    fn map_sector_preserves_sub_block_offsets() {
        let m = StripeMap::new(StripePolicy::Striped { chunk_blocks: 1 }, 2, 8 * 16, SPB);
        let (d, s) = m.map_sector(16 + 5);
        assert_eq!((d, s % u64::from(SPB)), (1, 5));
    }
}
