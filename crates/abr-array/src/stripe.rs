//! Striping policies: how a volume's flat block address space is laid
//! out over N member disks.
//!
//! All three policies work in units of file-system *blocks* (the
//! adaptive driver rejects any request crossing a block boundary, so a
//! block is the largest unit a single request can touch). A *chunk* is
//! a run of consecutive volume blocks kept together on one disk;
//! sub-block offsets are preserved, so a request never straddles two
//! disks.
//!
//! On top of a policy, an optional [`Redundancy`] scheme carves the
//! member set into data and redundancy capacity: mirroring pairs each
//! data disk with a copy disk, and rotated parity interleaves one
//! parity chunk per stripe row across all members (the RAID-5 layout).
//!
//! The map is fully determined by `(policy, redundancy, n_disks,
//! per-disk size)` at construction — no state updates on the I/O path —
//! which is what makes array runs byte-identical across thread counts.

use serde::{Deserialize, Serialize};

/// How volume blocks are distributed over the member disks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StripePolicy {
    /// Classic RAID-0: chunk `c` of the volume lives on disk
    /// `c mod N`, round-robin.
    Striped {
        /// Chunk size in file-system blocks (≥ 1).
        chunk_blocks: u64,
    },
    /// Concatenation (linear/JBOD): disk 0's blocks first, then disk
    /// 1's, and so on.
    Concat,
    /// Hash-sharded: each chunk's home disk is chosen by a fixed
    /// integer hash of its index, with linear probing onto the next
    /// disk once a disk is full. Spreads sequential runs like striping
    /// but without the rigid round-robin phase.
    HashShard {
        /// Chunk size in file-system blocks (≥ 1).
        chunk_blocks: u64,
    },
}

impl StripePolicy {
    /// Short policy name for reports and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            StripePolicy::Striped { .. } => "striped",
            StripePolicy::Concat => "concat",
            StripePolicy::HashShard { .. } => "hash",
        }
    }

    /// The chunk size in blocks (1 for concatenation, where the "chunk"
    /// is a whole disk).
    pub fn chunk_blocks(&self) -> u64 {
        match self {
            StripePolicy::Striped { chunk_blocks } | StripePolicy::HashShard { chunk_blocks } => {
                *chunk_blocks
            }
            StripePolicy::Concat => 1,
        }
    }
}

/// The redundancy scheme layered over a striping policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Redundancy {
    /// No redundancy: every member disk is data, a lost block is lost.
    None,
    /// RAID-1-like mirroring: the member set splits into a data half
    /// (disks `0..N/2`, laid out by the stripe policy) and a copy half
    /// (disk `d`'s copy lives on disk `d + N/2`). Requires an even
    /// member count of at least 2.
    Mirror,
    /// RAID-5-like rotated parity: each stripe row of `N-1` data
    /// chunks carries one parity chunk, and the parity position
    /// rotates (row `r`'s parity lives on disk `r mod N`) so parity
    /// writes spread over all members. Requires at least 3 members and
    /// the `Striped` policy (parity rows need the rigid round-robin
    /// phase).
    RotParity,
}

impl Redundancy {
    /// Short scheme name for reports and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            Redundancy::None => "none",
            Redundancy::Mirror => "mirror",
            Redundancy::RotParity => "rotparity",
        }
    }

    /// Whether the scheme stores any redundant copies or parity.
    pub fn is_redundant(&self) -> bool {
        !matches!(self, Redundancy::None)
    }
}

/// SplitMix64 finalizer — the same fixed integer hash `SimRng` uses for
/// substream derivation, reused here to shard chunks.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A precomputed volume-to-disk address map.
///
/// For `n_disks == 1` every policy is the identity map and the volume
/// exposes the member's partition size *exactly* — including a trailing
/// partial block — so a one-disk volume is byte-identical to driving
/// the disk directly. For `n_disks > 1` the volume exposes only whole
/// chunks (each disk's tail blocks that don't fill a chunk are unused).
///
/// With redundancy the exposed capacity shrinks accordingly: mirroring
/// stripes over the data half only, and rotated parity gives up one
/// chunk per stripe row.
#[derive(Debug, Clone)]
pub struct StripeMap {
    policy: StripePolicy,
    redundancy: Redundancy,
    n_disks: usize,
    /// Disks the base stripe layout addresses: `n_disks` for
    /// `None`/`RotParity` (rotated parity touches every member), the
    /// data half for `Mirror`.
    n_data: usize,
    sectors_per_block: u64,
    per_disk_blocks: u64,
    vol_sectors: u64,
    chunk_blocks: u64,
    /// `HashShard` only: chunk index → home disk.
    shard_disk: Vec<u32>,
    /// `HashShard` only: chunk index → chunk slot on its home disk.
    shard_slot: Vec<u64>,
    /// `HashShard` only: `disk * chunks_per_disk + slot` → chunk index
    /// (the inverse of the two vectors above, for resilvering).
    shard_rev: Vec<u64>,
}

impl StripeMap {
    /// Build a redundancy-free map for `n_disks` identical members,
    /// each exposing `per_disk_sectors` sectors of partition 0.
    ///
    /// # Panics
    /// If `n_disks == 0`, the chunk size is 0, or a disk is too small
    /// to hold even one chunk.
    pub fn new(
        policy: StripePolicy,
        n_disks: usize,
        per_disk_sectors: u64,
        sectors_per_block: u32,
    ) -> Self {
        Self::new_redundant(
            policy,
            Redundancy::None,
            n_disks,
            per_disk_sectors,
            sectors_per_block,
        )
    }

    /// Build the map with an explicit redundancy scheme.
    ///
    /// # Panics
    /// On the constraints of [`Self::new`], plus: `Mirror` needs an
    /// even `n_disks >= 2`; `RotParity` needs `n_disks >= 3` and the
    /// `Striped` policy.
    pub fn new_redundant(
        policy: StripePolicy,
        redundancy: Redundancy,
        n_disks: usize,
        per_disk_sectors: u64,
        sectors_per_block: u32,
    ) -> Self {
        assert!(n_disks >= 1, "a volume needs at least one disk");
        let spb = u64::from(sectors_per_block);
        assert!(spb >= 1);
        let per_disk_blocks = per_disk_sectors / spb;
        let chunk_blocks = policy.chunk_blocks();
        assert!(chunk_blocks >= 1, "chunk size must be at least one block");
        let n_data = match redundancy {
            Redundancy::None | Redundancy::RotParity => n_disks,
            Redundancy::Mirror => {
                assert!(
                    n_disks >= 2 && n_disks.is_multiple_of(2),
                    "mirroring needs an even member count of at least 2, got {n_disks}"
                );
                n_disks / 2
            }
        };
        if redundancy == Redundancy::RotParity {
            assert!(
                n_disks >= 3,
                "rotated parity needs at least 3 members, got {n_disks}"
            );
            assert!(
                matches!(policy, StripePolicy::Striped { .. }),
                "rotated parity requires the striped policy"
            );
        }

        let mut map = StripeMap {
            policy,
            redundancy,
            n_disks,
            n_data,
            sectors_per_block: spb,
            per_disk_blocks,
            vol_sectors: 0,
            chunk_blocks,
            shard_disk: Vec::new(),
            shard_slot: Vec::new(),
            shard_rev: Vec::new(),
        };
        if redundancy == Redundancy::RotParity {
            // Each stripe row holds one chunk per member, N-1 data and
            // one parity; a row exists only if every disk has the slot.
            let rows = per_disk_blocks / chunk_blocks;
            assert!(
                rows >= 1,
                "chunk of {chunk_blocks} blocks does not fit a {per_disk_blocks}-block disk"
            );
            map.vol_sectors = rows * (n_disks as u64 - 1) * chunk_blocks * spb;
            return map;
        }
        if n_data == 1 {
            // Identity over the single data disk: expose the partition
            // exactly, trailing partial block included.
            map.vol_sectors = per_disk_sectors;
            return map;
        }
        match policy {
            StripePolicy::Concat => {
                map.vol_sectors = n_data as u64 * per_disk_blocks * spb;
            }
            StripePolicy::Striped { .. } | StripePolicy::HashShard { .. } => {
                let chunks_per_disk = per_disk_blocks / chunk_blocks;
                assert!(
                    chunks_per_disk >= 1,
                    "chunk of {chunk_blocks} blocks does not fit a {per_disk_blocks}-block disk"
                );
                let total_chunks = n_data as u64 * chunks_per_disk;
                map.vol_sectors = total_chunks * chunk_blocks * spb;
                if matches!(policy, StripePolicy::HashShard { .. }) {
                    let mut fill = vec![0u64; n_data];
                    map.shard_disk.reserve(total_chunks as usize);
                    map.shard_slot.reserve(total_chunks as usize);
                    map.shard_rev = vec![0u64; total_chunks as usize];
                    for chunk in 0..total_chunks {
                        let mut d = (splitmix64(chunk) % n_data as u64) as usize;
                        while fill[d] == chunks_per_disk {
                            d = (d + 1) % n_data;
                        }
                        map.shard_disk.push(abr_sim::narrow::u32_from_usize(d));
                        map.shard_slot.push(fill[d]);
                        map.shard_rev[d * chunks_per_disk as usize + fill[d] as usize] = chunk;
                        fill[d] += 1;
                    }
                }
            }
        }
        map
    }

    /// The policy this map implements.
    pub fn policy(&self) -> StripePolicy {
        self.policy
    }

    /// The redundancy scheme layered over the policy.
    pub fn redundancy(&self) -> Redundancy {
        self.redundancy
    }

    /// Number of member disks.
    pub fn n_disks(&self) -> usize {
        self.n_disks
    }

    /// Disks the base stripe layout addresses: all members for
    /// `None`/`RotParity`, the data half for `Mirror`.
    pub fn data_disks(&self) -> usize {
        self.n_data
    }

    /// Total sectors the volume exposes.
    pub fn vol_sectors(&self) -> u64 {
        self.vol_sectors
    }

    /// Sectors per file-system block.
    pub fn sectors_per_block(&self) -> u64 {
        self.sectors_per_block
    }

    /// Mirroring only: the disk holding the other copy of everything on
    /// `disk` (an involution — data disk ↔ copy disk).
    ///
    /// # Panics
    /// If the map is not mirrored or `disk` is out of range.
    pub fn mirror_partner(&self, disk: usize) -> usize {
        assert_eq!(self.redundancy, Redundancy::Mirror, "not a mirrored map");
        assert!(disk < self.n_disks);
        (disk + self.n_disks / 2) % self.n_disks
    }

    /// Map a volume block index to `(disk index, disk block index)`.
    /// With mirroring this is the *primary* (data-half) location; with
    /// rotated parity it is the data chunk's home.
    pub fn map_block(&self, vblock: u64) -> (usize, u64) {
        if self.redundancy == Redundancy::RotParity {
            let chunk = vblock / self.chunk_blocks;
            let within = vblock % self.chunk_blocks;
            let data_per_row = self.n_disks as u64 - 1;
            let row = chunk / data_per_row;
            let pos = chunk % data_per_row;
            let parity = row % self.n_disks as u64;
            let disk = if pos < parity { pos } else { pos + 1 } as usize;
            return (disk, row * self.chunk_blocks + within);
        }
        if self.n_data == 1 {
            return (0, vblock);
        }
        match self.policy {
            StripePolicy::Striped { .. } => {
                let chunk = vblock / self.chunk_blocks;
                let within = vblock % self.chunk_blocks;
                let disk = (chunk % self.n_data as u64) as usize;
                let slot = chunk / self.n_data as u64;
                (disk, slot * self.chunk_blocks + within)
            }
            StripePolicy::Concat => (
                (vblock / self.per_disk_blocks) as usize,
                vblock % self.per_disk_blocks,
            ),
            StripePolicy::HashShard { .. } => {
                let chunk = vblock / self.chunk_blocks;
                let within = vblock % self.chunk_blocks;
                let disk = self.shard_disk[chunk as usize] as usize;
                let slot = self.shard_slot[chunk as usize];
                (disk, slot * self.chunk_blocks + within)
            }
        }
    }

    /// Rotated parity only: the `(disk, disk block)` holding the parity
    /// that covers volume block `vblock` (same within-chunk offset).
    ///
    /// # Panics
    /// If the map is not parity-redundant.
    pub fn parity_location(&self, vblock: u64) -> (usize, u64) {
        assert_eq!(self.redundancy, Redundancy::RotParity, "not a parity map");
        let within = vblock % self.chunk_blocks;
        let row = (vblock / self.chunk_blocks) / (self.n_disks as u64 - 1);
        let parity = (row % self.n_disks as u64) as usize;
        (parity, row * self.chunk_blocks + within)
    }

    /// Rotated parity only: the other data locations XOR-ed into the
    /// parity that covers `vblock` (same within-chunk offset, excludes
    /// `vblock`'s own location and the parity chunk). Together with
    /// `vblock`'s location these are the row's full XOR group.
    ///
    /// # Panics
    /// If the map is not parity-redundant.
    pub fn data_peers_of_block(&self, vblock: u64) -> Vec<(usize, u64)> {
        assert_eq!(self.redundancy, Redundancy::RotParity, "not a parity map");
        let within = vblock % self.chunk_blocks;
        let chunk = vblock / self.chunk_blocks;
        let data_per_row = self.n_disks as u64 - 1;
        let row = chunk / data_per_row;
        let own_pos = chunk % data_per_row;
        let parity = row % self.n_disks as u64;
        let mut peers = Vec::with_capacity(self.n_disks - 2);
        for pos in 0..data_per_row {
            if pos == own_pos {
                continue;
            }
            let disk = if pos < parity { pos } else { pos + 1 } as usize;
            peers.push((disk, row * self.chunk_blocks + within));
        }
        peers
    }

    /// Rotated parity only: the volume blocks whose data lives in the
    /// stripe row containing disk block `dblock` of any member (the
    /// blocks a parity chunk at that row protects), at the same
    /// within-chunk offset.
    pub fn row_blocks_at(&self, dblock: u64) -> Vec<u64> {
        assert_eq!(self.redundancy, Redundancy::RotParity, "not a parity map");
        let row = dblock / self.chunk_blocks;
        let within = dblock % self.chunk_blocks;
        let data_per_row = self.n_disks as u64 - 1;
        (0..data_per_row)
            .map(|pos| (row * data_per_row + pos) * self.chunk_blocks + within)
            .collect()
    }

    /// Inverse of [`Self::map_block`] over the base layout: the volume
    /// block whose *data* home is `(disk, dblock)`, or `None` when the
    /// slot is unused tail or holds parity. For mirrored maps the
    /// inverse is defined over the data half — pass the data disk (the
    /// copy disk's content is its partner's at the same `dblock`).
    pub fn vblock_at(&self, disk: usize, dblock: u64) -> Option<u64> {
        let spb = self.sectors_per_block;
        if self.redundancy == Redundancy::RotParity {
            let row = dblock / self.chunk_blocks;
            let within = dblock % self.chunk_blocks;
            let parity = (row % self.n_disks as u64) as usize;
            if disk == parity {
                return None; // the row's parity chunk, not data
            }
            let pos = if disk < parity {
                disk as u64
            } else {
                disk as u64 - 1
            };
            let data_per_row = self.n_disks as u64 - 1;
            let vb = (row * data_per_row + pos) * self.chunk_blocks + within;
            return (vb * spb < self.vol_sectors).then_some(vb);
        }
        if disk >= self.n_data {
            return None; // a mirror copy disk — content lives at the partner
        }
        if self.n_data == 1 {
            return (dblock * spb < self.vol_sectors).then_some(dblock);
        }
        let vb = match self.policy {
            StripePolicy::Striped { .. } => {
                let slot = dblock / self.chunk_blocks;
                let within = dblock % self.chunk_blocks;
                let chunk = slot * self.n_data as u64 + disk as u64;
                chunk * self.chunk_blocks + within
            }
            StripePolicy::Concat => {
                if dblock >= self.per_disk_blocks {
                    return None;
                }
                disk as u64 * self.per_disk_blocks + dblock
            }
            StripePolicy::HashShard { .. } => {
                let chunks_per_disk = self.per_disk_blocks / self.chunk_blocks;
                let slot = dblock / self.chunk_blocks;
                let within = dblock % self.chunk_blocks;
                if slot >= chunks_per_disk {
                    return None;
                }
                let chunk = self.shard_rev[disk * chunks_per_disk as usize + slot as usize];
                chunk * self.chunk_blocks + within
            }
        };
        (vb * spb < self.vol_sectors).then_some(vb)
    }

    /// Rotated parity only: whether `(disk, dblock)` is a parity slot
    /// (content is the XOR of its row, not a volume block).
    pub fn is_parity_slot(&self, disk: usize, dblock: u64) -> bool {
        self.redundancy == Redundancy::RotParity
            && (dblock / self.chunk_blocks % self.n_disks as u64) as usize == disk
    }

    /// Check that the map sends the volume's chunks onto the member
    /// disks' chunk slots as a permutation — every `(disk, slot)` pair
    /// hit exactly once, none out of bounds. With rotated parity the
    /// data chunks plus each row's parity chunk must jointly cover
    /// every member's rows. Sanitize builds only.
    #[cfg(feature = "sanitize")]
    pub fn check_chunk_permutation(&self) -> Result<(), String> {
        if self.redundancy == Redundancy::RotParity {
            let rows = self.per_disk_blocks / self.chunk_blocks;
            let data_per_row = self.n_disks as u64 - 1;
            let vol_chunks = rows * data_per_row;
            let data_ids = (0..vol_chunks).map(|chunk| {
                let (disk, dblock) = self.map_block(chunk * self.chunk_blocks);
                disk as u64 * rows + dblock / self.chunk_blocks
            });
            let parity_ids = (0..rows).map(|row| {
                let (disk, dblock) = self.parity_location(row * data_per_row * self.chunk_blocks);
                disk as u64 * rows + dblock / self.chunk_blocks
            });
            return abr_lint::sanitize::check_permutation(
                data_ids.chain(parity_ids),
                self.n_disks as u64 * rows,
            );
        }
        if self.n_data == 1 {
            return Ok(()); // identity by construction
        }
        let chunks_per_disk = match self.policy {
            StripePolicy::Concat => self.per_disk_blocks,
            _ => self.per_disk_blocks / self.chunk_blocks,
        };
        let vol_chunks = self.vol_sectors / (self.chunk_blocks * self.sectors_per_block);
        let ids = (0..vol_chunks).map(|chunk| {
            let (disk, dblock) = self.map_block(chunk * self.chunk_blocks);
            let slot = dblock / self.chunk_blocks;
            disk as u64 * chunks_per_disk + slot
        });
        abr_lint::sanitize::check_permutation(ids, self.n_data as u64 * chunks_per_disk)
    }

    /// Map a volume sector to `(disk index, disk sector)`. The
    /// sub-block offset is preserved, so a request that fits in one
    /// volume block lands wholly on one disk.
    pub fn map_sector(&self, vsector: u64) -> (usize, u64) {
        let (disk, dblock) = self.map_block(vsector / self.sectors_per_block);
        (
            disk,
            dblock * self.sectors_per_block + vsector % self.sectors_per_block,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPB: u32 = 16;

    fn policies() -> Vec<StripePolicy> {
        vec![
            StripePolicy::Striped { chunk_blocks: 4 },
            StripePolicy::Striped { chunk_blocks: 1 },
            StripePolicy::Concat,
            StripePolicy::HashShard { chunk_blocks: 4 },
        ]
    }

    #[test]
    fn n1_is_the_identity_for_every_policy() {
        // 100 blocks plus a 7-sector partial tail; N=1 must expose it all.
        let per_disk = 100 * u64::from(SPB) + 7;
        for p in policies() {
            let m = StripeMap::new(p, 1, per_disk, SPB);
            assert_eq!(m.vol_sectors(), per_disk, "{p:?}");
            for v in [0, 1, 15, 16, 17, per_disk - 1] {
                assert_eq!(m.map_sector(v), (0, v), "{p:?} sector {v}");
            }
        }
    }

    #[test]
    fn every_policy_is_a_bijection_within_bounds() {
        let per_disk = 24 * u64::from(SPB);
        for p in policies() {
            for n in [2usize, 3, 4, 8] {
                let m = StripeMap::new(p, n, per_disk, SPB);
                let vol_blocks = m.vol_sectors() / u64::from(SPB);
                let mut seen = std::collections::HashSet::new();
                for vb in 0..vol_blocks {
                    let (d, db) = m.map_block(vb);
                    assert!(d < n, "{p:?} N={n}: disk {d} out of range");
                    assert!(
                        db < per_disk / u64::from(SPB),
                        "{p:?} N={n}: block {db} past end of disk"
                    );
                    assert!(seen.insert((d, db)), "{p:?} N={n}: ({d},{db}) mapped twice");
                }
            }
        }
    }

    #[test]
    fn chunks_stay_contiguous_on_one_disk() {
        let per_disk = 24 * u64::from(SPB);
        for p in policies() {
            let m = StripeMap::new(p, 4, per_disk, SPB);
            let cb = p.chunk_blocks();
            let vol_blocks = m.vol_sectors() / u64::from(SPB);
            for chunk in 0..vol_blocks / cb {
                let (d0, b0) = m.map_block(chunk * cb);
                for i in 1..cb {
                    let (d, b) = m.map_block(chunk * cb + i);
                    assert_eq!(d, d0, "{p:?}: chunk {chunk} split across disks");
                    assert_eq!(b, b0 + i, "{p:?}: chunk {chunk} not contiguous");
                }
            }
        }
    }

    #[test]
    fn striped_round_robins_across_disks() {
        let m = StripeMap::new(StripePolicy::Striped { chunk_blocks: 2 }, 3, 12 * 16, SPB);
        assert_eq!(m.map_block(0), (0, 0));
        assert_eq!(m.map_block(1), (0, 1));
        assert_eq!(m.map_block(2), (1, 0));
        assert_eq!(m.map_block(4), (2, 0));
        assert_eq!(m.map_block(6), (0, 2));
    }

    #[test]
    fn concat_fills_disks_in_order() {
        let m = StripeMap::new(StripePolicy::Concat, 2, 10 * 16, SPB);
        assert_eq!(m.map_block(0), (0, 0));
        assert_eq!(m.map_block(9), (0, 9));
        assert_eq!(m.map_block(10), (1, 0));
        assert_eq!(m.map_block(19), (1, 9));
    }

    #[test]
    fn hash_shard_balances_exactly() {
        let per_disk = 40 * u64::from(SPB);
        let m = StripeMap::new(
            StripePolicy::HashShard { chunk_blocks: 4 },
            4,
            per_disk,
            SPB,
        );
        let mut per = vec![0u64; 4];
        let vol_blocks = m.vol_sectors() / u64::from(SPB);
        for vb in (0..vol_blocks).step_by(4) {
            per[m.map_block(vb).0] += 1;
        }
        assert_eq!(per, vec![10, 10, 10, 10], "probing must fill every disk");
    }

    #[test]
    fn map_sector_preserves_sub_block_offsets() {
        let m = StripeMap::new(StripePolicy::Striped { chunk_blocks: 1 }, 2, 8 * 16, SPB);
        let (d, s) = m.map_sector(16 + 5);
        assert_eq!((d, s % u64::from(SPB)), (1, 5));
    }

    #[test]
    fn mirror_stripes_over_data_half_only() {
        let per_disk = 24 * u64::from(SPB);
        for p in policies() {
            let m = StripeMap::new_redundant(p, Redundancy::Mirror, 4, per_disk, SPB);
            assert_eq!(m.data_disks(), 2, "{p:?}");
            // Same exposed capacity as a 2-disk plain volume.
            let plain = StripeMap::new(p, 2, per_disk, SPB);
            assert_eq!(m.vol_sectors(), plain.vol_sectors(), "{p:?}");
            let vol_blocks = m.vol_sectors() / u64::from(SPB);
            for vb in 0..vol_blocks {
                let (d, db) = m.map_block(vb);
                assert!(d < 2, "{p:?}: primary on copy disk {d}");
                assert_eq!((d, db), plain.map_block(vb), "{p:?} block {vb}");
            }
        }
    }

    #[test]
    fn mirror_partner_is_an_involution() {
        let m = StripeMap::new_redundant(
            StripePolicy::Striped { chunk_blocks: 2 },
            Redundancy::Mirror,
            6,
            24 * u64::from(SPB),
            SPB,
        );
        for d in 0..6 {
            let p = m.mirror_partner(d);
            assert_ne!(p, d);
            assert_eq!(m.mirror_partner(p), d);
        }
        assert_eq!(m.mirror_partner(0), 3);
        assert_eq!(m.mirror_partner(5), 2);
    }

    #[test]
    fn mirror_of_two_is_one_data_disk_identity() {
        let per_disk = 10 * u64::from(SPB) + 3;
        let m =
            StripeMap::new_redundant(StripePolicy::Concat, Redundancy::Mirror, 2, per_disk, SPB);
        assert_eq!(m.vol_sectors(), per_disk);
        assert_eq!(m.map_sector(17), (0, 17));
        assert_eq!(m.mirror_partner(0), 1);
    }

    #[test]
    fn rotparity_rotates_parity_and_skips_it() {
        // N=3, chunk 1 block: row r parity on disk r%3, two data
        // chunks per row on the other disks in index order.
        let m = StripeMap::new_redundant(
            StripePolicy::Striped { chunk_blocks: 1 },
            Redundancy::RotParity,
            3,
            6 * u64::from(SPB),
            SPB,
        );
        assert_eq!(m.vol_sectors(), 12 * u64::from(SPB)); // 6 rows × 2 data
                                                          // Row 0: parity disk 0, data on 1 and 2.
        assert_eq!(m.map_block(0), (1, 0));
        assert_eq!(m.map_block(1), (2, 0));
        assert_eq!(m.parity_location(0), (0, 0));
        assert_eq!(m.parity_location(1), (0, 0));
        // Row 1: parity disk 1, data on 0 and 2.
        assert_eq!(m.map_block(2), (0, 1));
        assert_eq!(m.map_block(3), (2, 1));
        assert_eq!(m.parity_location(2), (1, 1));
        // Row 3 wraps: parity back on disk 0.
        assert_eq!(m.parity_location(6), (0, 3));
    }

    #[test]
    fn rotparity_peers_close_the_xor_group() {
        let m = StripeMap::new_redundant(
            StripePolicy::Striped { chunk_blocks: 2 },
            Redundancy::RotParity,
            4,
            16 * u64::from(SPB),
            SPB,
        );
        let vol_blocks = m.vol_sectors() / u64::from(SPB);
        for vb in 0..vol_blocks {
            let own = m.map_block(vb);
            let parity = m.parity_location(vb);
            let peers = m.data_peers_of_block(vb);
            assert_eq!(peers.len(), 2, "N-2 peers");
            // Own + peers + parity live on 4 distinct disks, same row.
            let mut disks: Vec<usize> = peers.iter().map(|&(d, _)| d).collect();
            disks.push(own.0);
            disks.push(parity.0);
            disks.sort_unstable();
            assert_eq!(disks, vec![0, 1, 2, 3], "block {vb}");
            for &(_, db) in &peers {
                assert_eq!(db, own.1, "peers share the row offset");
            }
            assert_eq!(parity.1, own.1, "parity shares the row offset");
        }
    }

    #[test]
    fn rotparity_row_blocks_round_trip() {
        let m = StripeMap::new_redundant(
            StripePolicy::Striped { chunk_blocks: 2 },
            Redundancy::RotParity,
            4,
            16 * u64::from(SPB),
            SPB,
        );
        let vol_blocks = m.vol_sectors() / u64::from(SPB);
        for vb in 0..vol_blocks {
            let (_, db) = m.map_block(vb);
            let row = m.row_blocks_at(db);
            assert_eq!(row.len(), 3, "N-1 data blocks per row");
            assert!(row.contains(&vb), "block {vb} missing from its own row");
            for &peer in &row {
                assert_eq!(m.map_block(peer).1, db, "row offset mismatch");
            }
        }
    }

    #[test]
    fn rotparity_is_a_bijection_over_all_members() {
        let per_disk = 24 * u64::from(SPB);
        for n in [3usize, 4, 5] {
            let m = StripeMap::new_redundant(
                StripePolicy::Striped { chunk_blocks: 4 },
                Redundancy::RotParity,
                n,
                per_disk,
                SPB,
            );
            let vol_blocks = m.vol_sectors() / u64::from(SPB);
            let mut seen = std::collections::HashSet::new();
            for vb in 0..vol_blocks {
                let (d, db) = m.map_block(vb);
                assert!(d < n);
                assert!(db < per_disk / u64::from(SPB));
                assert!(seen.insert((d, db)), "N={n}: ({d},{db}) mapped twice");
                let (pd, pdb) = m.parity_location(vb);
                assert!(pd < n);
                assert_ne!(pd, d, "parity on the data disk");
                assert_eq!(pdb, db, "parity at a different row offset");
            }
        }
    }

    #[test]
    fn vblock_at_inverts_map_block() {
        let per_disk = 24 * u64::from(SPB);
        for p in policies() {
            for n in [2usize, 3, 4] {
                let m = StripeMap::new(p, n, per_disk, SPB);
                let vol_blocks = m.vol_sectors() / u64::from(SPB);
                for vb in 0..vol_blocks {
                    let (d, db) = m.map_block(vb);
                    assert_eq!(m.vblock_at(d, db), Some(vb), "{p:?} N={n} vb={vb}");
                }
            }
        }
        // Redundant maps too; parity slots are not data.
        let m = StripeMap::new_redundant(
            StripePolicy::Striped { chunk_blocks: 2 },
            Redundancy::RotParity,
            4,
            16 * u64::from(SPB),
            SPB,
        );
        let vol_blocks = m.vol_sectors() / u64::from(SPB);
        for vb in 0..vol_blocks {
            let (d, db) = m.map_block(vb);
            assert_eq!(m.vblock_at(d, db), Some(vb));
            assert!(!m.is_parity_slot(d, db));
            let (pd, pdb) = m.parity_location(vb);
            assert!(m.is_parity_slot(pd, pdb));
            assert_eq!(m.vblock_at(pd, pdb), None, "parity slot is not data");
        }
        // Mirror: the inverse is over the data half; copy disks map to None.
        let m = StripeMap::new_redundant(
            StripePolicy::Striped { chunk_blocks: 2 },
            Redundancy::Mirror,
            4,
            per_disk,
            SPB,
        );
        let vol_blocks = m.vol_sectors() / u64::from(SPB);
        for vb in 0..vol_blocks {
            let (d, db) = m.map_block(vb);
            assert_eq!(m.vblock_at(d, db), Some(vb));
            assert_eq!(m.vblock_at(m.mirror_partner(d), db), None);
        }
    }

    #[test]
    #[should_panic(expected = "even member count")]
    fn mirror_rejects_odd_member_counts() {
        let _ = StripeMap::new_redundant(
            StripePolicy::Concat,
            Redundancy::Mirror,
            3,
            24 * u64::from(SPB),
            SPB,
        );
    }

    #[test]
    #[should_panic(expected = "striped policy")]
    fn rotparity_rejects_non_striped_policies() {
        let _ = StripeMap::new_redundant(
            StripePolicy::Concat,
            Redundancy::RotParity,
            3,
            24 * u64::from(SPB),
            SPB,
        );
    }
}
