//! The array experiment harness: the single-disk measured-day protocol
//! of `abr_core::Experiment`, run against an [`ArrayVolume`].
//!
//! The event loop, setup sequence, warm-up, fault installation, and
//! clock arithmetic mirror the single-disk harness *step for step* —
//! that is what makes the N=1 byte-identity guarantee hold: a one-disk
//! striped volume executes exactly the same sequence of driver calls
//! at exactly the same simulated times as `Experiment`, so its
//! `DayMetrics` serialize to identical bytes.
//!
//! Each member disk runs its own [`RearrangementDaemon`]: monitors are
//! read per disk every `monitor_period`, hot lists are computed per
//! disk, and overnight passes run independently — hot blocks migrate
//! into *each spindle's* reserved region based on the traffic that
//! spindle saw.

use crate::stripe::{Redundancy, StripePolicy};
use crate::volume::{ArrayHealth, ArrayVolume};
use abr_core::analyzer::{BoundedAnalyzer, DecayingAnalyzer, FullAnalyzer, ReferenceAnalyzer};
use abr_core::arranger::{BlockArranger, RearrangeReport};
use abr_core::daemon::RearrangementDaemon;
use abr_core::recovery::MaintenanceConfig;
use abr_core::{run_meter_add, DayMetrics, ExperimentConfig, OVERNIGHT};
use abr_disk::fault::{FaultInjector, FaultPlan};
use abr_disk::{Disk, DiskLabel};
use abr_driver::monitor::PerfSnapshot;
use abr_driver::{AdaptiveDriver, DriverConfig, Ioctl, IoctlReply};
use abr_fs::{FileSystem, FsConfig, MountMode};
use abr_sim::{SimDuration, SimRng, SimTime};
use abr_workload::WorkloadState;

/// Array experiment configuration: the single-disk configuration
/// applied to every member, plus the array shape.
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Per-disk configuration (disk model, workload, policy, periods,
    /// seed). `base.fault_plan` is ignored — use [`ArrayConfig::fault_plans`].
    pub base: ExperimentConfig,
    /// Number of member disks.
    pub n_disks: usize,
    /// How volume blocks are laid out over the members.
    pub stripe: StripePolicy,
    /// Optional per-disk fault plans, indexed by disk; missing entries
    /// mean no injector on that disk. Installed after setup and
    /// warm-up, exactly like the single-disk harness.
    pub fault_plans: Vec<Option<FaultPlan>>,
    /// The redundancy scheme woven into the stripe map.
    pub redundancy: Redundancy,
    /// Rebuild/scrub pacing (only consulted when `redundancy` is a
    /// redundant scheme).
    pub maintenance: MaintenanceConfig,
}

impl ArrayConfig {
    /// An array of `n_disks` members each configured like `base`,
    /// without redundancy.
    pub fn new(base: ExperimentConfig, n_disks: usize, stripe: StripePolicy) -> Self {
        Self::redundant(base, n_disks, stripe, Redundancy::None)
    }

    /// An array with an explicit redundancy scheme; redundant schemes
    /// run the background rebuild/scrub engine with default pacing.
    pub fn redundant(
        base: ExperimentConfig,
        n_disks: usize,
        stripe: StripePolicy,
        redundancy: Redundancy,
    ) -> Self {
        assert!(n_disks >= 1, "an array needs at least one disk");
        assert!(
            base.online.is_none(),
            "online rearrangement is single-disk only"
        );
        ArrayConfig {
            base,
            n_disks,
            stripe,
            fault_plans: Vec::new(),
            redundancy,
            maintenance: MaintenanceConfig::default(),
        }
    }
}

/// One measured day of an array run: the volume-level roll-up plus the
/// per-disk breakdown (the per-disk label dimension of the results).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ArrayDayMetrics {
    /// Metrics over all requests the volume served, with per-disk
    /// performance windows merged order-insensitively.
    pub volume: DayMetrics,
    /// The same metrics computed per member disk.
    pub per_disk: Vec<DayMetrics>,
}

/// The assembled simulated file server over an N-disk volume.
pub struct ArrayExperiment {
    config: ArrayConfig,
    volume: ArrayVolume,
    fs: FileSystem,
    workload: WorkloadState,
    daemons: Vec<RearrangementDaemon>,
    clock: SimTime,
    day_index: u64,
    /// Blocks currently placed across all reserved areas.
    placed: u32,
    /// Overnight per-disk rearrangement passes that failed and were
    /// skipped (the disk kept its previous placement).
    rearrange_failures: u64,
    /// The member format, kept to build hot-spare replacement drives.
    label: DiskLabel,
    driver_cfg: DriverConfig,
    /// Whether disk `i`'s scheduled replacement has been installed.
    replaced: Vec<bool>,
}

impl std::fmt::Debug for ArrayExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayExperiment")
            .field("disk", &self.config.base.disk.name)
            .field("profile", &self.config.base.profile.name)
            .field("n_disks", &self.config.n_disks)
            .field("day", &self.day_index)
            .field("placed", &self.placed)
            .finish_non_exhaustive()
    }
}

impl ArrayExperiment {
    /// Build the whole stack: format N disks, assemble the volume,
    /// create one file system over it, build the workload population,
    /// run warm-up, and install any per-disk fault injectors.
    pub fn new(config: ArrayConfig) -> Self {
        // Setup and warm-up are unmeasured, exactly as in the
        // single-disk harness.
        let _unmeasured = abr_obs::trace_pause();
        let base = &config.base;
        let model = base.disk.clone();
        let spb = 16; // 8 KB blocks
        let label = if base.reserved_cylinders > 0 {
            if base.reserved_at_edge {
                DiskLabel::rearranged_at_edge(model.geometry, base.reserved_cylinders, spb)
            } else {
                DiskLabel::rearranged_aligned(model.geometry, base.reserved_cylinders, spb)
            }
        } else {
            DiskLabel::whole_disk(model.geometry)
        };
        let driver_cfg = DriverConfig {
            block_size: 8192,
            scheduler: base.scheduler,
            monitor_capacity: 1 << 20,
            table_max_entries: 8192,
            ..DriverConfig::default()
        };
        let members: Vec<AdaptiveDriver> = (0..config.n_disks)
            .map(|_| {
                let mut disk = Disk::new(model.clone());
                AdaptiveDriver::format(&mut disk, &label, &driver_cfg);
                let mut d =
                    AdaptiveDriver::attach(disk, driver_cfg).expect("fresh format attaches");
                // The volume reads member data via the stores directly;
                // sub-request completions carry timing only.
                d.set_deliver_read_data(false);
                d
            })
            .collect();
        let spc = members[0].label().physical.sectors_per_cylinder();
        let mut volume = ArrayVolume::with_redundancy(
            members,
            config.stripe,
            config.redundancy,
            config.maintenance,
        );

        let fs_cfg = FsConfig {
            partition: 0,
            cache_blocks: base.cache_blocks,
            mode: MountMode::ReadWrite,
            write_through: base.profile.nfs_write_through,
            ..FsConfig::default()
        };
        let mut fs = FileSystem::newfs(fs_cfg, volume.vol_sectors(), spc);

        // Build the file population; push its writes through the volume
        // synchronously (setup, unmeasured).
        let mut rng = SimRng::new(base.seed);
        let mut clock = SimTime::ZERO;
        let (workload, setup_reqs) = WorkloadState::setup(base.profile.clone(), &mut fs, &mut rng)
            .expect("workload population fits the file system");
        for req in setup_reqs {
            volume.submit(req, clock).expect("setup requests are valid");
            if volume.queue_len() > 64 {
                if let Some(t) = volume.next_completion() {
                    clock = t;
                    volume.complete_next(t);
                }
            }
        }
        while let Some(t) = volume.next_completion() {
            clock = t;
            volume.complete_next(t);
        }

        if !base.profile.is_mutating() {
            fs.remount(MountMode::ReadOnly);
        }

        // One rearrangement daemon per member disk.
        let daemons: Vec<RearrangementDaemon> = (0..config.n_disks)
            .map(|_| {
                let analyzer: Box<dyn ReferenceAnalyzer> =
                    match (base.analyzer_decay, base.analyzer_capacity) {
                        (Some(decay), _) => Box::new(DecayingAnalyzer::new(decay)),
                        (None, Some(cap)) => Box::new(BoundedAnalyzer::new(cap)),
                        (None, None) => Box::new(FullAnalyzer::new()),
                    };
                let arranger = BlockArranger::new(base.policy.make(fs.layout().interleave));
                let mut daemon = RearrangementDaemon::new(analyzer, arranger, base.monitor_period);
                daemon.set_incremental(base.incremental_rearrange);
                daemon
            })
            .collect();

        // Zero every member's monitors so day 1 starts clean.
        for i in 0..config.n_disks {
            volume
                .disk_mut(i)
                .ioctl(Ioctl::ReadStats, clock)
                .expect("stats read");
            volume
                .disk_mut(i)
                .ioctl(Ioctl::ReadRequestTable, clock)
                .expect("table read");
        }

        let n_disks = config.n_disks;
        let mut e = ArrayExperiment {
            config,
            volume,
            fs,
            workload,
            daemons,
            clock: clock + SimDuration::from_mins(10),
            day_index: 0,
            placed: 0,
            rearrange_failures: 0,
            label,
            driver_cfg,
            replaced: vec![false; n_disks],
        };
        for _ in 0..e.config.base.warmup_days {
            e.run_day();
            e.rearrange_for_next_day(0);
        }
        e.day_index = 0;
        // Faults start once the population is built and the cache warm.
        // Disk 0 draws from the same "faults" substream as a single
        // disk; disk i > 0 gets an independent indexed substream.
        for i in 0..e.config.n_disks {
            let plan = e.config.fault_plans.get(i).copied().flatten();
            if let Some(plan) = plan {
                let rng = if i == 0 {
                    SimRng::new(e.config.base.seed).substream("faults")
                } else {
                    SimRng::new(e.config.base.seed).substream_idx("faults", i as u64)
                };
                e.volume
                    .disk_mut(i)
                    .disk_mut()
                    .set_injector(Some(FaultInjector::new(plan, rng)));
            }
        }
        e
    }

    /// The configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// The current simulated clock (start of the next day).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Install (or replace) disk `i`'s fault plan after construction —
    /// for scenarios whose fault times are expressed relative to the
    /// post-setup clock (e.g. "dies halfway through day 1"). Uses the
    /// same per-disk seeded substreams as construction-time plans, and
    /// registers the plan so the replacement schedule is honored.
    pub fn install_fault_plan(&mut self, i: usize, plan: FaultPlan) {
        if self.config.fault_plans.len() <= i {
            self.config.fault_plans.resize(i + 1, None);
        }
        self.config.fault_plans[i] = Some(plan);
        let rng = if i == 0 {
            SimRng::new(self.config.base.seed).substream("faults")
        } else {
            SimRng::new(self.config.base.seed).substream_idx("faults", i as u64)
        };
        self.volume
            .disk_mut(i)
            .disk_mut()
            .set_injector(Some(FaultInjector::new(plan, rng)));
    }

    /// Blocks currently placed across all reserved areas.
    pub fn placed(&self) -> u32 {
        self.placed
    }

    /// The volume (inspection in tests and benches).
    pub fn volume(&self) -> &ArrayVolume {
        &self.volume
    }

    /// The volume, mutably.
    pub fn volume_mut(&mut self) -> &mut ArrayVolume {
        &mut self.volume
    }

    /// A member disk's rearrangement daemon (inspection).
    pub fn daemon(&self, i: usize) -> &RearrangementDaemon {
        &self.daemons[i]
    }

    /// Overnight per-disk rearrangement passes that failed and were
    /// skipped.
    pub fn rearrange_failures(&self) -> u64 {
        self.rearrange_failures
    }

    /// Snapshot array health (and publish the `array.*` gauges).
    pub fn health(&mut self) -> ArrayHealth {
        self.volume.health()
    }

    /// Install scheduled hot-spare replacements: once a member's
    /// spindle has died, its replacement has arrived, and its queue has
    /// drained, swap in a freshly formatted drive and queue its
    /// contents for re-silvering.
    fn install_replacements(&mut self, now: SimTime) {
        if !self.volume.redundancy().is_redundant() {
            return;
        }
        for i in 0..self.config.n_disks {
            if self.replaced[i] {
                continue;
            }
            let Some(plan) = self.config.fault_plans.get(i).copied().flatten() else {
                continue;
            };
            let Some(at) = plan.replacement_at() else {
                continue;
            };
            if now < at || !self.volume.disk(i).is_idle() {
                continue;
            }
            let died = self.volume.disk(i).disk().injector().is_some_and(|inj| {
                inj.is_failed() || inj.plan().disk_death_at.is_some_and(|t| now >= t)
            });
            if !died {
                continue;
            }
            let mut disk = Disk::new(self.config.base.disk.clone());
            AdaptiveDriver::format(&mut disk, &self.label, &self.driver_cfg);
            let mut fresh =
                AdaptiveDriver::attach(disk, self.driver_cfg).expect("fresh format attaches");
            fresh.set_deliver_read_data(false);
            self.volume.replace_disk(i, fresh);
            self.replaced[i] = true;
        }
    }

    /// Read every member's request table into its daemon.
    fn collect_all(&mut self, now: SimTime) {
        for i in 0..self.config.n_disks {
            self.daemons[i].collect(self.volume.disk_mut(i), now);
        }
    }

    /// Run one measured day of workload and return its metrics.
    pub fn run_day(&mut self) -> ArrayDayMetrics {
        let _t = abr_obs::time_scope("event_loop");
        let day_start = self.clock;
        let day_end = day_start + self.config.base.profile.day_length;
        let mut next_sync = day_start + self.config.base.sync_period;
        let mut next_monitor = day_start + self.config.base.monitor_period;
        // Redundant volumes run a maintenance window (replacement
        // arrival, rebuild, scrub) on its own period; `SimTime::MAX`
        // keeps the plain-volume event sequence byte-identical.
        let maint_period = self.config.maintenance.period;
        let mut next_maint = if self.volume.has_maintenance() {
            day_start + maint_period
        } else {
            SimTime::MAX
        };
        let (mut op_at, mut op) = self.workload.next_op(day_start, &self.fs);
        let mut pending: abr_sim::EventQueue<abr_driver::IoRequest> = abr_sim::EventQueue::new();

        loop {
            let next_completion = self.volume.next_completion().unwrap_or(SimTime::MAX);
            let next_pending = pending.peek_time().unwrap_or(SimTime::MAX);
            let t = op_at
                .min(next_sync)
                .min(next_monitor)
                .min(next_completion)
                .min(next_pending)
                .min(next_maint);
            if t > day_end && pending.is_empty() {
                break;
            }
            if t == next_completion {
                self.volume.complete_next(t);
            } else if t == next_maint {
                self.install_replacements(t);
                self.volume.maintenance_tick(t);
                next_maint = t + maint_period;
            } else if t == next_pending {
                let (_, r) = pending.pop().expect("non-empty");
                self.volume.submit(r, t).expect("workload request valid");
            } else if t == op_at {
                let reqs = self.workload.apply(op, &mut self.fs);
                let pace = self.config.base.request_pacing;
                for (i, r) in reqs.into_iter().enumerate() {
                    pending.schedule(t + pace * i as u64, r);
                }
                let (at, next) = self.workload.next_op(t, &self.fs);
                op_at = if at > day_end { SimTime::MAX } else { at };
                op = next;
            } else if t == next_sync {
                for r in self.fs.sync() {
                    self.volume.submit(r, t).expect("sync request valid");
                }
                next_sync = t + self.config.base.sync_period;
            } else {
                self.collect_all(t);
                next_monitor = t + self.config.base.monitor_period;
            }
        }

        // Day end: drain outstanding requests, flush the cache, collect
        // the final monitor contents.
        let mut t = day_end;
        while let Some(c) = self.volume.next_completion() {
            t = c;
            self.volume.complete_next(c);
        }
        for r in self.fs.sync() {
            self.volume.submit(r, t).expect("final sync valid");
        }
        while let Some(c) = self.volume.next_completion() {
            t = c;
            self.volume.complete_next(c);
        }
        self.collect_all(t);

        // Per-disk metrics, then the volume roll-up: performance
        // windows merge by summation (order-insensitive), block count
        // distributions concatenate and re-sort descending.
        let mut per_disk = Vec::with_capacity(self.config.n_disks);
        let mut merged: Option<PerfSnapshot> = None;
        let mut all_counts: Vec<u64> = Vec::new();
        let mut read_counts: Vec<u64> = Vec::new();
        for i in 0..self.config.n_disks {
            let snapshot = match self
                .volume
                .disk_mut(i)
                .ioctl(Ioctl::ReadStats, t)
                .expect("stats read")
            {
                IoctlReply::Stats(s) => s,
                _ => unreachable!(),
            };
            let (all_dist, read_dist) = self.daemons[i].distributions();
            let placed_i = self.volume.disk(i).block_table().len() as u32;
            per_disk.push(DayMetrics::new(
                self.day_index,
                placed_i > 0,
                placed_i,
                &snapshot,
                &self.config.base.disk.seek,
                all_dist.iter().map(|h| h.count).collect(),
                read_dist.iter().map(|h| h.count).collect(),
            ));
            all_counts.extend(all_dist.iter().map(|h| h.count));
            read_counts.extend(read_dist.iter().map(|h| h.count));
            match &mut merged {
                Some(m) => m.merge(&snapshot),
                None => merged = Some(*snapshot),
            }
        }
        // Analyzer hot lists are emitted in non-increasing count order,
        // so at N=1 this sort is the identity and the volume metrics
        // match the single-disk harness byte for byte.
        all_counts.sort_by(|a, b| b.cmp(a));
        read_counts.sort_by(|a, b| b.cmp(a));
        let volume_metrics = DayMetrics::new(
            self.day_index,
            self.placed > 0,
            self.placed,
            &merged.expect("at least one disk"),
            &self.config.base.disk.seek,
            all_counts,
            read_counts,
        );

        self.clock = t.max(day_end);
        run_meter_add(self.clock - day_start);
        ArrayDayMetrics {
            volume: volume_metrics,
            per_disk,
        }
    }

    /// End the day: each member places its own `n_blocks_per_disk`
    /// hottest blocks for tomorrow (0 = "off" day), then the workload
    /// drifts and the clock jumps the overnight gap. The members
    /// rearrange in parallel overnight, so the gap is driven by the
    /// *slowest* member's movement time.
    pub fn rearrange_for_next_day(&mut self, n_blocks_per_disk: usize) -> RearrangeReport {
        let mut total = RearrangeReport::default();
        for i in 0..self.config.n_disks {
            // A member that is still re-silvering defers its overnight
            // pass: rearrangement I/O would compete with the rebuild,
            // and moving blocks under an incomplete redundancy window
            // is exactly when placement churn is least affordable.
            if self.volume.stale_blocks(i) > 0 {
                self.daemons[i].end_day_keep_placement();
                continue;
            }
            let hot = self.daemons[i].hot_list(n_blocks_per_disk);
            let report = match self.daemons[i].end_day_with(
                self.volume.disk_mut(i),
                &hot,
                n_blocks_per_disk,
                self.clock,
            ) {
                Ok(report) => report,
                Err(_) => {
                    // Same policy as the single-disk harness: the pass
                    // failed outright, the on-disk placement is still
                    // consistent, skip the day and keep the placement.
                    self.rearrange_failures += 1;
                    self.daemons[i].end_day_keep_placement();
                    RearrangeReport::default()
                }
            };
            total.blocks_placed += report.blocks_placed;
            total.blocks_failed += report.blocks_failed;
            total.io_ops += report.io_ops;
            total.busy = total.busy.max(report.busy);
            // Overnight power-cycle: a member cut mid-movement is back
            // for the morning (its media faults persist).
            if let Some(inj) = self.volume.disk_mut(i).disk_mut().injector_mut() {
                if inj.is_dead() {
                    inj.revive();
                }
            }
        }
        self.placed = (0..self.config.n_disks)
            .map(|i| self.volume.disk(i).block_table().len() as u32)
            .sum();
        self.workload.advance_day();
        self.day_index += 1;
        self.clock += OVERNIGHT.max(total.busy + SimDuration::from_mins(1));
        // The overnight movement polluted every member's stats; clear
        // them so the next day starts clean.
        for i in 0..self.config.n_disks {
            self.volume
                .disk_mut(i)
                .ioctl(Ioctl::ReadStats, self.clock)
                .expect("stats clear"); // abr-lint: allow(P001, ReadStats on a healthy member cannot fail)
        }
        total
    }

    /// Convenience: the paper's alternating protocol — `pairs` pairs of
    /// (off day, on day with `n_blocks_per_disk` placed per member).
    pub fn run_on_off(&mut self, pairs: usize, n_blocks_per_disk: usize) -> Vec<ArrayDayMetrics> {
        let mut out = Vec::with_capacity(pairs * 2);
        for _ in 0..pairs {
            out.push(self.run_day());
            self.rearrange_for_next_day(n_blocks_per_disk);
            out.push(self.run_day());
            self.rearrange_for_next_day(0);
        }
        out
    }
}
