//! # abr-array — a multi-disk volume over adaptive drivers
//!
//! The paper rearranges blocks on one spindle; this crate scales the
//! I/O path out to N spindles. An [`ArrayVolume`] presents N
//! independent [`abr_driver::AdaptiveDriver`]s behind a single flat
//! block address space:
//!
//! * [`stripe`] — the address map: classic striping with a
//!   configurable chunk size, concatenation, and hash-sharding.
//! * [`volume`] — the dispatcher: splits requests into per-disk
//!   sub-requests, merges completions in simulated-time order, tracks
//!   per-disk health (dead / failed / rebuilding / degraded / lost
//!   blocks), and publishes the `array.*` registry metrics.
//! * [`experiment`] — the measured-day harness over a volume, with one
//!   rearrangement daemon *per member disk* so hot blocks migrate into
//!   each spindle's own reserved region.
//!
//! ## Redundancy
//!
//! A volume can carry a [`stripe::Redundancy`] scheme — mirroring
//! (striped over half the members, copied to the other half) or
//! rotated block parity. Redundant volumes serve reads through
//! whole-disk failures, re-silver hot-spare replacements under a
//! windowed I/O budget, and background-scrub for latent defects. See
//! the [`volume`] module docs for the full model.
//!
//! ## Determinism invariants
//!
//! Array runs are byte-identical across thread counts because (1) the
//! stripe map is immutable after construction, (2) simultaneous
//! completions retire in disk-index order, and (3) volume metrics fold
//! per-disk windows with order-insensitive merges. An N=1 volume is
//! byte-identical to the single-disk harness — the experiment loop is
//! a line-for-line mirror of `abr_core::Experiment`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod stripe;
pub mod volume;

pub use experiment::{ArrayConfig, ArrayDayMetrics, ArrayExperiment};
pub use stripe::{Redundancy, StripeMap, StripePolicy};
pub use volume::{ArrayHealth, ArrayVolume, DiskHealth, DiskIoCounts, VolCompletion, VolRequestId};
