//! The tentpole guarantee: an N=1 striped volume reduces EXACTLY to
//! the single-disk harness. Both stacks run the same workload from the
//! same seed and their per-day metrics must serialize to identical
//! bytes — not merely "close", identical.

use abr_array::{ArrayConfig, ArrayExperiment, StripePolicy};
use abr_core::{Experiment, ExperimentConfig};
use abr_disk::models;
use abr_sim::SimDuration;
use abr_workload::WorkloadProfile;

fn tiny_config() -> ExperimentConfig {
    let mut profile = WorkloadProfile::tiny_test();
    profile.day_length = SimDuration::from_mins(20);
    let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
    cfg.cache_blocks = 192;
    cfg.seed = 12345;
    cfg
}

#[test]
fn n1_striped_volume_is_byte_identical_to_single_disk() {
    let single: Vec<String> = Experiment::new(tiny_config())
        .run_on_off(1, 40)
        .iter()
        .map(|m| serde_json::to_string(m).expect("day metrics serialize"))
        .collect();

    let array_cfg = ArrayConfig::new(tiny_config(), 1, StripePolicy::Striped { chunk_blocks: 8 });
    let array: Vec<String> = ArrayExperiment::new(array_cfg)
        .run_on_off(1, 40)
        .iter()
        .map(|m| serde_json::to_string(&m.volume).expect("day metrics serialize"))
        .collect();

    assert_eq!(single.len(), array.len());
    for (day, (s, a)) in single.iter().zip(&array).enumerate() {
        assert_eq!(s, a, "day {day} diverged between single-disk and N=1 array");
    }
}

#[test]
fn n1_volume_per_disk_view_matches_its_own_rollup() {
    let array_cfg = ArrayConfig::new(tiny_config(), 1, StripePolicy::Concat);
    let days = ArrayExperiment::new(array_cfg).run_on_off(1, 40);
    for m in &days {
        assert_eq!(m.per_disk.len(), 1);
        assert_eq!(
            serde_json::to_string(&m.volume).unwrap(),
            serde_json::to_string(&m.per_disk[0]).unwrap(),
            "one-disk roll-up must equal the member's own metrics"
        );
    }
}

#[test]
fn array_runs_are_deterministic() {
    let run = || {
        let cfg = ArrayConfig::new(tiny_config(), 2, StripePolicy::Striped { chunk_blocks: 8 });
        let days = ArrayExperiment::new(cfg).run_on_off(1, 40);
        days.iter()
            .map(|m| serde_json::to_string(m).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn multi_disk_rearrangement_places_per_spindle() {
    let cfg = ArrayConfig::new(tiny_config(), 2, StripePolicy::Striped { chunk_blocks: 8 });
    let mut e = ArrayExperiment::new(cfg);
    e.run_day();
    e.rearrange_for_next_day(40);
    let per_disk: Vec<u32> = (0..2)
        .map(|i| e.volume().disk(i).block_table().len() as u32)
        .collect();
    assert!(
        per_disk.iter().all(|&n| n > 0),
        "every member should place hot blocks, got {per_disk:?}"
    );
    assert_eq!(e.placed(), per_disk.iter().sum::<u32>());
    let on = e.run_day();
    assert!(on.volume.rearranged);
    assert!(on.per_disk.iter().all(|d| d.rearranged));
}
