//! Degraded-array serving: kill one member mid-day via a `FaultPlan`
//! power cut and assert the volume keeps serving every request that
//! maps to a healthy disk, while the failed disk shows up in both the
//! health report and the `array.*` metrics.

use abr_array::{ArrayConfig, ArrayExperiment, StripePolicy};
use abr_core::ExperimentConfig;
use abr_disk::models;
use abr_disk::FaultPlan;
use abr_sim::SimDuration;
use abr_workload::WorkloadProfile;

fn tiny_config() -> ExperimentConfig {
    let mut profile = WorkloadProfile::tiny_test();
    profile.day_length = SimDuration::from_mins(20);
    let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
    cfg.cache_blocks = 192;
    cfg.seed = 12345;
    cfg
}

#[test]
fn one_dead_disk_does_not_stop_the_volume() {
    abr_obs::registry_clear();
    let mut cfg = ArrayConfig::new(tiny_config(), 3, StripePolicy::Striped { chunk_blocks: 8 });
    // Disk 1 powers off after 500 operations — early in the measured
    // day; disks 0 and 2 stay healthy.
    cfg.fault_plans = vec![
        None,
        Some(FaultPlan {
            power_cut_after_ops: Some(500),
            ..FaultPlan::none()
        }),
        None,
    ];
    let mut e = ArrayExperiment::new(cfg);
    let day = e.run_day();

    // The day completed and produced traffic despite the dead member.
    assert!(day.volume.all.n > 100, "volume served {}", day.volume.all.n);

    // The failed disk is reported.
    let health = e.health();
    assert!(health.disks[1].dead, "disk 1's power cut must have fired");
    assert_eq!(health.n_dead(), 1);
    assert_eq!(health.n_healthy(), 2);
    assert!(!health.is_fully_healthy());

    // 100% of the requests that mapped to healthy disks were served:
    // everything submitted completed, nothing failed.
    for i in [0usize, 2] {
        let c = e.volume().io_counts(i);
        assert!(c.completed > 0, "disk {i} served nothing");
        assert_eq!(c.failed, 0, "healthy disk {i} reported failures");
        assert_eq!(
            c.submitted, c.completed,
            "disk {i} dropped requests on the floor"
        );
    }
    // The dead disk kept completing (with errors) — the volume never
    // wedges on a dead member.
    let c1 = e.volume().io_counts(1);
    assert!(c1.failed > 0, "the dead disk must report failed requests");
    assert_eq!(c1.submitted, c1.completed + c1.failed);

    // And the failure is visible in the metrics registry.
    let snap = abr_obs::registry_snapshot();
    assert!(
        snap["counters"]["array.disk.1.failed"]
            .as_u64()
            .unwrap_or(0)
            > 0,
        "array.disk.1.failed must count the dead disk's errors"
    );
    assert_eq!(
        snap["counters"]["array.disk.0.failed"]
            .as_u64()
            .unwrap_or(u64::MAX),
        0,
        "array.disk.0.failed must stay zero"
    );
    assert_eq!(snap["gauges"]["array.disks.dead"].as_u64().unwrap_or(0), 1);
    assert_eq!(snap["gauges"]["array.disks"].as_u64().unwrap_or(0), 3);
}

#[test]
fn dead_disk_revives_overnight() {
    let mut cfg = ArrayConfig::new(tiny_config(), 2, StripePolicy::Concat);
    cfg.fault_plans = vec![
        Some(FaultPlan {
            power_cut_after_ops: Some(500),
            ..FaultPlan::none()
        }),
        None,
    ];
    let mut e = ArrayExperiment::new(cfg);
    e.run_day();
    assert_eq!(e.health().n_dead(), 1);
    // The overnight power-cycle brings the member back.
    e.rearrange_for_next_day(0);
    assert_eq!(e.health().n_dead(), 0);
}
