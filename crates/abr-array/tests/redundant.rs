//! Redundant-array survival: whole-disk death under mirror and rotated
//! parity must not lose a block or fail a user request; the hot-spare
//! replacement re-silvers under the windowed I/O budget; and no
//! sequence of failures, rebuild, and scrub may ever leave one logical
//! block readable at two different values.

use abr_array::{ArrayConfig, ArrayExperiment, ArrayVolume, Redundancy, StripePolicy};
use abr_core::recovery::MaintenanceConfig;
use abr_core::ExperimentConfig;
use abr_disk::fault::{FaultInjector, FaultPlan};
use abr_disk::{models, Disk, DiskLabel, SECTOR_SIZE};
use abr_driver::{AdaptiveDriver, DriverConfig, IoRequest, SchedulerKind};
use abr_sim::{SimDuration, SimRng, SimTime};
use abr_workload::WorkloadProfile;
use bytes::Bytes;

fn tiny_config(seed: u64) -> ExperimentConfig {
    let mut profile = WorkloadProfile::tiny_test();
    profile.day_length = SimDuration::from_mins(20);
    let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
    cfg.cache_blocks = 192;
    cfg.seed = seed;
    cfg
}

/// Run one scheme through a mid-day whole-disk death with a hot-spare
/// replacement; return `(served_ok, failed, lost, n_failed_members)`.
fn death_run(n: usize, redundancy: Redundancy) -> (u64, u64, u64, usize) {
    let cfg = ArrayConfig::redundant(
        tiny_config(777),
        n,
        StripePolicy::Striped { chunk_blocks: 8 },
        redundancy,
    );
    let mut e = ArrayExperiment::new(cfg);
    let death = e.clock() + SimDuration::from_mins(10);
    e.install_fault_plan(1, FaultPlan::disk_death(death, SimDuration::from_mins(5)));
    e.run_on_off(1, 40);
    let (ok, failed) = e.volume().request_outcomes();
    let health = e.health();
    (ok, failed, health.total_lost(), health.n_failed())
}

#[test]
fn mirror_serves_every_request_through_disk_death() {
    let (ok, failed, lost, still_failed) = death_run(2, Redundancy::Mirror);
    assert!(ok > 100, "mirror array barely served anything ({ok})");
    assert_eq!(failed, 0, "mirror array failed user requests");
    assert_eq!(lost, 0, "mirror array lost blocks");
    assert_eq!(still_failed, 0, "hot-spare replacement never installed");
}

#[test]
fn rotparity_serves_every_request_through_disk_death() {
    let (ok, failed, lost, still_failed) = death_run(3, Redundancy::RotParity);
    assert!(ok > 100, "rotparity array barely served anything ({ok})");
    assert_eq!(failed, 0, "rotparity array failed user requests");
    assert_eq!(lost, 0, "rotparity array lost blocks");
    assert_eq!(still_failed, 0, "hot-spare replacement never installed");
}

#[test]
fn unprotected_array_fails_requests_when_a_disk_dies() {
    // The control: with no redundancy the same death strands every
    // request that maps to the dead member — proving the mirror and
    // parity runs above actually exercised the failure.
    let cfg = ArrayConfig::new(
        tiny_config(777),
        2,
        StripePolicy::Striped { chunk_blocks: 8 },
    );
    let mut e = ArrayExperiment::new(cfg);
    let death = e.clock() + SimDuration::from_mins(10);
    e.install_fault_plan(1, FaultPlan::disk_death(death, SimDuration::from_mins(5)));
    e.run_on_off(1, 40);
    let (_, failed) = e.volume().request_outcomes();
    assert!(failed > 0, "the unprotected control must fail requests");
}

#[test]
fn rebuild_stays_within_its_io_budget() {
    let cfg = ArrayConfig::redundant(
        tiny_config(31),
        2,
        StripePolicy::Striped { chunk_blocks: 8 },
        Redundancy::Mirror,
    );
    let budget = cfg.maintenance.rebuild_ops_per_window;
    let mut e = ArrayExperiment::new(cfg);
    let death = e.clock() + SimDuration::from_mins(5);
    e.install_fault_plan(1, FaultPlan::disk_death(death, SimDuration::from_mins(5)));
    e.run_on_off(1, 40);
    let peak = e.volume().rebuild_peak_window_ops();
    assert!(peak > 0, "rebuild never ran");
    assert!(
        peak <= budget,
        "rebuild exceeded its per-window budget: {peak} > {budget}"
    );
    // Health distinguishes "rebuilding" from "failed": the replacement
    // is in and serving, not dead.
    let h = e.health();
    assert_eq!(h.n_failed(), 0);
    assert_eq!(h.n_dead(), 0);
    if e.volume().rebuild_pending() > 0 {
        assert!(h.disks[1].rebuilding, "stale member must report rebuilding");
        assert!(h.disks[1].impaired());
        assert_eq!(h.n_rebuilding(), 1);
    }
}

fn member(spb: u32) -> AdaptiveDriver {
    let model = models::toshiba_mk156f();
    let label = DiskLabel::rearranged_aligned(model.geometry, 8, spb);
    let cfg = DriverConfig {
        block_size: 8192,
        scheduler: SchedulerKind::Scan,
        monitor_capacity: 1 << 16,
        table_max_entries: 1024,
        ..DriverConfig::default()
    };
    let mut disk = Disk::new(model);
    AdaptiveDriver::format(&mut disk, &label, &cfg);
    AdaptiveDriver::attach(disk, cfg).expect("fresh format attaches")
}

/// Every readable copy of every tracked block must agree — a block
/// readable at two different values means rebuild or scrub forked the
/// volume's contents.
fn assert_no_forked_blocks(v: &ArrayVolume, tracked: &[(u64, u8)]) {
    let spb = 16u64;
    for &(vb, tag) in tracked {
        let (d, db) = v.map().map_block(vb);
        let mut copies: Vec<(usize, Vec<u8>)> = Vec::new();
        match v.redundancy() {
            Redundancy::Mirror => {
                let p = v.map().mirror_partner(d);
                for loc in [d, p] {
                    if v.stale_blocks(loc) == 0 {
                        if let Ok(b) = v.disk(loc).peek(0, db * spb, spb as u32) {
                            copies.push((loc, b.to_vec()));
                        }
                    }
                }
            }
            _ => {
                if let Ok(b) = v.disk(d).peek(0, db * spb, spb as u32) {
                    copies.push((d, b.to_vec()));
                }
            }
        }
        assert!(!copies.is_empty(), "block {vb} unreadable everywhere");
        for (loc, bytes) in &copies {
            assert!(
                bytes.iter().all(|&x| x == tag),
                "block {vb} on disk {loc} holds stale bytes (expected {tag:#x})"
            );
        }
    }
}

#[test]
fn scrub_and_rebuild_never_fork_a_block() {
    // Randomized torture: seeded writes, a whole-disk death mid-stream,
    // more writes while degraded, hot-spare replacement, rebuild under
    // budget, then scrub sweeps — at every checkpoint, no tracked block
    // may be readable at two different values.
    let maint = MaintenanceConfig {
        rebuild_ops_per_window: 4096, // drain the resilver quickly
        ..MaintenanceConfig::default()
    };
    let mut v = ArrayVolume::with_redundancy(
        vec![member(16), member(16)],
        StripePolicy::Striped { chunk_blocks: 4 },
        Redundancy::Mirror,
        maint,
    );
    let spb = 16u64;
    let mut rng = SimRng::new(0xF0C5).substream("torture");
    let n_blocks = 48u64;
    let mut tracked: Vec<(u64, u8)> = Vec::new();
    let mut now = SimTime::ZERO;
    let write =
        |v: &mut ArrayVolume, tracked: &mut Vec<(u64, u8)>, rng: &mut SimRng, now: SimTime| {
            let vb = rng.below(n_blocks);
            let tag = rng.below(251) as u8;
            let req = IoRequest::write(
                0,
                vb * spb,
                spb as u32,
                Bytes::from(vec![tag; 16 * SECTOR_SIZE]),
            );
            v.submit(req, now).expect("write accepted");
            tracked.retain(|&(b, _)| b != vb);
            tracked.push((vb, tag));
        };

    // Phase 1: healthy writes.
    for _ in 0..64 {
        write(&mut v, &mut tracked, &mut rng, now);
    }
    v.drain();
    assert_no_forked_blocks(&v, &tracked);

    // Phase 2: disk 0 dies; keep writing while degraded.
    let death = SimTime::from_micros(1_000_000);
    v.disk_mut(0)
        .disk_mut()
        .set_injector(Some(FaultInjector::new(
            FaultPlan::disk_death(death, SimDuration::from_secs(30)),
            SimRng::new(1).substream("faults"),
        )));
    now = SimTime::from_micros(2_000_000);
    for _ in 0..48 {
        write(&mut v, &mut tracked, &mut rng, now);
    }
    v.drain();
    let (_, failed) = v.request_outcomes();
    assert_eq!(failed, 0, "degraded mirror failed writes");

    // Phase 3: hot-spare replacement + rebuild, with writes racing the
    // resilver.
    v.replace_disk(0, member(16));
    let mut t = SimTime::from_micros(60_000_000);
    for round in 0..2_000 {
        v.maintenance_tick(t);
        if round % 7 == 0 {
            write(&mut v, &mut tracked, &mut rng, t);
        }
        v.drain();
        if v.rebuild_pending() == 0 {
            break;
        }
        t += SimDuration::from_secs(10);
    }
    assert_eq!(v.rebuild_pending(), 0, "rebuild never drained");
    assert_no_forked_blocks(&v, &tracked);

    // Phase 4: scrub sweeps repair nothing new and fork nothing.
    for _ in 0..16 {
        t += SimDuration::from_secs(10);
        v.maintenance_tick(t);
        v.drain();
    }
    assert_no_forked_blocks(&v, &tracked);
    assert_eq!(v.health().total_lost(), 0);
}
