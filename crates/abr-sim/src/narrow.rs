//! Checked integer narrowing for sector/cylinder arithmetic.
//!
//! The geometry modules (`geometry.rs`, `layout.rs`, `cylmap.rs`,
//! `stripe.rs`) are banned from bare `as` narrowing casts (lint rule
//! C001): a silently truncated cylinder or slot index corrupts the
//! address map without failing any test on small configs. These helpers
//! make the narrowing explicit and panic loudly on overflow instead of
//! wrapping.

/// Narrow a `u64` to `u32`, panicking on overflow.
#[inline]
#[track_caller]
pub fn u32_from_u64(x: u64) -> u32 {
    match u32::try_from(x) {
        Ok(v) => v,
        Err(_) => panic!("narrowing overflow: {x} does not fit in u32"),
    }
}

/// Narrow a `usize` to `u32`, panicking on overflow.
#[inline]
#[track_caller]
pub fn u32_from_usize(x: usize) -> u32 {
    match u32::try_from(x) {
        Ok(v) => v,
        Err(_) => panic!("narrowing overflow: {x} does not fit in u32"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass_through() {
        assert_eq!(u32_from_u64(0), 0);
        assert_eq!(u32_from_u64(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(u32_from_usize(7), 7);
    }

    #[test]
    #[should_panic(expected = "narrowing overflow")]
    fn overflow_panics_u64() {
        u32_from_u64(u64::from(u32::MAX) + 1);
    }

    #[test]
    #[should_panic(expected = "narrowing overflow")]
    fn overflow_panics_usize() {
        u32_from_usize(usize::MAX);
    }
}
