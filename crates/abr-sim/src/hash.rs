//! Deterministic fast hashing for simulation-internal maps.
//!
//! `std::collections::HashMap`'s default hasher (SipHash with a
//! per-process random key) is built to resist hash-flooding from
//! untrusted input. Simulation tables hash only internal keys — block
//! numbers, i-node numbers, slot indices — so that defense buys nothing
//! and costs ~2× per probe on the per-operation hot path (cache
//! references, i-node lookups). [`FastHasher`] is a fixed-key
//! multiply-xor hasher in the Fx/wyhash family: a few cycles per word,
//! identical across processes.
//!
//! Determinism note: none of the repo's outputs may depend on map
//! iteration order (the determinism gates already enforce this — the
//! std hasher's per-process random key would otherwise make reruns
//! disagree), so swapping the hasher cannot change any artifact byte.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier from the golden ratio, the usual Fx-style constant.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A fixed-key multiply-xor hasher. Fast on the small integer keys the
/// simulator uses everywhere; not for untrusted input.
#[derive(Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One extra round so keys differing only in high bits still
        // spread over the low bits HashMap indexes with.
        let h = self.state.wrapping_mul(K);
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))); // abr-lint: allow(P001, chunks_exact guarantees length)
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(tail) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }
}

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(v: u64) -> u64 {
        let mut h = FastHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(0xDEAD_BEEF), hash_of(0xDEAD_BEEF));
        let mut m: FastMap<u64, u32> = FastMap::default();
        m.insert(7, 1);
        assert_eq!(m.get(&7), Some(&1));
    }

    #[test]
    fn nearby_keys_spread() {
        // Sequential block numbers must not collide in the low bits a
        // power-of-two table indexes with. An ideal random function
        // mapping 1024 keys into 4096 low-12-bit bins yields ~906
        // distinct values in expectation; require within ~5% of that
        // (the hasher is deterministic, so this measures quality, not
        // luck — catastrophic clustering would land far below).
        let mut low = std::collections::HashSet::new();
        for k in 0..1024u64 {
            low.insert(hash_of(k) & 0xFFF);
        }
        assert!(
            low.len() > 860,
            "only {} distinct low-12-bit values",
            low.len()
        );
    }

    #[test]
    fn byte_writes_match_length_discrimination() {
        let mut a = FastHasher::default();
        a.write(b"ab");
        let mut b = FastHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }
}
