//! # abr-sim — discrete-event simulation substrate
//!
//! The measurement substrate for the adaptive block rearrangement
//! reproduction (Akyürek & Salem, ICDE 1993). The paper instruments a real
//! SunOS device driver with microsecond-resolution timers and
//! 1-millisecond-resolution distribution tables; this crate provides the
//! equivalent machinery for a simulated driver:
//!
//! * [`time`] — simulated time as integer microseconds (the paper's
//!   measurement resolution), plus duration arithmetic.
//! * [`event`] — a deterministic event queue for discrete-event simulation.
//! * [`rng`] — a single-seed deterministic random number facility with
//!   named substreams, so every experiment is exactly reproducible.
//! * [`dist`] — the random distributions the workload models need
//!   (Zipf with numeric calibration, exponential, discrete weighted tables).
//! * [`hash`] — deterministic fixed-key hashing for hot-path maps (the
//!   std hasher's per-process SipHash key costs ~2× per probe and buys
//!   nothing against internal keys).
//! * [`arrival`] — arrival processes: Poisson and bursty ON/OFF trains,
//!   plus the periodic-update write burst pattern of the UNIX `update`
//!   daemon.
//! * [`hist`] — histograms at 1 ms resolution (like the driver's monitor
//!   tables), discrete distribution tables (seek distances), and cumulative
//!   statistics at full microsecond resolution.
//! * [`stats`] — small online summary statistics (min/avg/max across days).
//! * [`json`] — dependency-free, order-preserving JSON values with
//!   deterministic serialization, for the machine-readable experiment and
//!   benchmark artifacts (`results/*.json`, `BENCH_*.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod dist;
pub mod event;
pub mod hash;
pub mod hist;
pub mod json;
pub mod narrow;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use hist::{DistTable, Histogram, TimeStats};
pub use json::JsonValue;
pub use rng::SimRng;
pub use stats::{OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
