//! Histograms and distribution tables.
//!
//! Mirrors the paper's driver instrumentation (§4.1.5): "time
//! distributions are recorded with a resolution of one millisecond...
//! Cumulative service times and queueing times are recorded as well, using
//! the full resolution of the measurements."
//!
//! * [`Histogram`] — fixed-width bucket histogram over durations, 1 ms
//!   buckets by default, *plus* a full-resolution cumulative sum so means
//!   are exact.
//! * [`DistTable`] — a sparse table of discrete values (e.g. seek distance
//!   in cylinders) to counts.
//! * [`TimeStats`] — the pair of (histogram, exact cumulative) the driver
//!   keeps for each measured quantity.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fixed-bucket-width histogram of durations with an exact cumulative sum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width_us: u64,
    buckets: Vec<u64>,
    /// Count of samples beyond the last bucket.
    overflow: u64,
    count: u64,
    /// Exact sum at microsecond resolution.
    total_us: u64,
    max_us: u64,
}

impl Histogram {
    /// A histogram with 1 ms buckets covering `[0, range_ms)` ms, like the
    /// driver's monitor tables.
    pub fn millis(range_ms: usize) -> Self {
        Histogram::new(1_000, range_ms)
    }

    /// A histogram with `bucket_width_us`-wide buckets, `n_buckets` of
    /// them; samples beyond the range go to an overflow counter but are
    /// still reflected exactly in the mean.
    ///
    /// # Panics
    /// Panics if the width or count is zero.
    pub fn new(bucket_width_us: u64, n_buckets: usize) -> Self {
        assert!(bucket_width_us > 0 && n_buckets > 0);
        Histogram {
            bucket_width_us,
            buckets: vec![0; n_buckets],
            overflow: 0,
            count: 0,
            total_us: 0,
            max_us: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        let idx = (us / self.bucket_width_us) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean (microsecond resolution), or `None` if empty.
    pub fn mean(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_micros(self.total_us / self.count))
    }

    /// Exact mean in fractional milliseconds, or NaN if empty (convenient
    /// for report tables).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.total_us as f64 / self.count as f64 / 1_000.0
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_us)
    }

    /// Exact sum of all samples.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_micros(self.total_us)
    }

    /// Fraction of samples strictly below `d` (computed from buckets, so
    /// resolution is one bucket; overflow samples count as below only
    /// when `d` exceeds the largest recorded sample). Returns NaN if
    /// empty.
    pub fn fraction_below(&self, d: SimDuration) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let limit = (d.as_micros() / self.bucket_width_us) as usize;
        let mut below: u64 = self.buckets.iter().take(limit).sum();
        if limit >= self.buckets.len() && d.as_micros() > self.max_us {
            below += self.overflow;
        }
        below as f64 / self.count as f64
    }

    /// CDF sample points `(upper_edge, cumulative_fraction)` per bucket,
    /// for plotting (Figures 4 and 6 in the paper). Trailing empty buckets
    /// are trimmed; the overflow mass appears as a final point at the
    /// histogram range.
    pub fn cdf_points(&self) -> Vec<(SimDuration, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut pts = Vec::new();
        let mut acc = 0u64;
        let last_used = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        for (i, &c) in self.buckets.iter().take(last_used).enumerate() {
            acc += c;
            pts.push((
                SimDuration::from_micros((i as u64 + 1) * self.bucket_width_us),
                acc as f64 / self.count as f64,
            ));
        }
        if self.overflow > 0 {
            // Place the overflow point past the histogram range (at the
            // largest sample) so x stays strictly increasing.
            pts.push((
                SimDuration::from_micros(
                    self.max_us
                        .max(self.buckets.len() as u64 * self.bucket_width_us),
                ),
                1.0,
            ));
        }
        pts
    }

    /// Approximate quantile (bucket upper edge containing it); `q` in
    /// `[0,1]`. Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(SimDuration::from_micros(
                    (i as u64 + 1) * self.bucket_width_us,
                ));
            }
        }
        Some(SimDuration::from_micros(self.max_us))
    }

    /// Merge another histogram into this one.
    ///
    /// # Panics
    /// Panics if the bucket geometry differs.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bucket_width_us, other.bucket_width_us);
        assert_eq!(self.buckets.len(), other.buckets.len());
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.total_us += other.total_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Reset to empty (the driver's read-and-clear ioctl).
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.overflow = 0;
        self.count = 0;
        self.total_us = 0;
        self.max_us = 0;
    }
}

/// Values below this use the dense count array; larger values spill to
/// the ordered map. Seek distances are bounded by the disk's cylinder
/// count (≈2000 for the paper's disks), so in practice every observation
/// lands in the dense half and recording is a single array increment.
const DIST_DENSE_LIMIT: u64 = 4096;

/// A table of discrete value → count, used for seek-distance
/// distributions (value = distance in cylinders).
///
/// Layout is dense-first: small values (the common case) count into a
/// flat array indexed by value, anything `>= DIST_DENSE_LIMIT` falls
/// back to an ordered map. Iteration is ascending by value across both
/// halves — the same order the previous all-`BTreeMap` layout produced,
/// so order-sensitive consumers ([`DistTable::mean_by`] sums `f64`s in
/// iteration order) observe identical results.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DistTable {
    dense: Vec<u64>,
    spill: BTreeMap<u64, u64>,
    count: u64,
    total: u128,
}

impl DistTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `value`.
    pub fn record(&mut self, value: u64) {
        if value < DIST_DENSE_LIMIT {
            let idx = value as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, 0);
            }
            self.dense[idx] += 1;
        } else {
            *self.spill.entry(value).or_insert(0) += 1;
        }
        self.count += 1;
        self.total += u128::from(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean value, or NaN if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Number of observations of exactly `value`.
    pub fn count_of(&self, value: u64) -> u64 {
        if value < DIST_DENSE_LIMIT {
            self.dense.get(value as usize).copied().unwrap_or(0)
        } else {
            self.spill.get(&value).copied().unwrap_or(0)
        }
    }

    /// Fraction of observations of exactly `value` (NaN if empty). The
    /// paper reports "Zero-length Seeks (%)" = `fraction_of(0) * 100`.
    pub fn fraction_of(&self, value: u64) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.count_of(value) as f64 / self.count as f64
        }
    }

    /// Iterate `(value, count)` in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
            .chain(self.spill.iter().map(|(&v, &c)| (v, c)))
    }

    /// Apply a function to every observed value, producing the mean of the
    /// transformed values (used to turn a seek-*distance* distribution into
    /// a mean seek *time* via the disk's seek curve, exactly as the paper
    /// computes its seek times). Returns NaN if empty.
    pub fn mean_by<F: Fn(u64) -> f64>(&self, f: F) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let sum: f64 = self.iter().map(|(v, c)| f(v) * c as f64).sum();
        sum / self.count as f64
    }

    /// Merge another table into this one.
    pub fn merge(&mut self, other: &DistTable) {
        if other.dense.len() > self.dense.len() {
            self.dense.resize(other.dense.len(), 0);
        }
        for (slot, &c) in self.dense.iter_mut().zip(&other.dense) {
            *slot += c;
        }
        for (&v, &c) in &other.spill {
            *self.spill.entry(v).or_insert(0) += c;
        }
        self.count += other.count;
        self.total += other.total;
    }

    /// Reset to empty, keeping the dense array's allocation for reuse.
    pub fn clear(&mut self) {
        self.dense.fill(0);
        self.spill.clear();
        self.count = 0;
        self.total = 0;
    }
}

/// The (1 ms histogram, exact cumulative) pair the driver keeps per
/// measured time quantity (§4.1.5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeStats {
    hist: Histogram,
}

impl TimeStats {
    /// Stats with a 1 ms histogram covering `[0, range_ms)` ms.
    pub fn new(range_ms: usize) -> Self {
        TimeStats {
            hist: Histogram::millis(range_ms),
        }
    }

    /// Record one measurement.
    pub fn record(&mut self, d: SimDuration) {
        self.hist.record(d);
    }

    /// The 1 ms-resolution histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Exact mean in milliseconds (NaN if empty).
    pub fn mean_ms(&self) -> f64 {
        self.hist.mean_ms()
    }

    /// Number of measurements.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Exact cumulative total.
    pub fn total(&self) -> SimDuration {
        self.hist.total()
    }

    /// Merge another stats object.
    pub fn merge(&mut self, other: &TimeStats) {
        self.hist.merge(&other.hist);
    }

    /// Reset (read-and-clear).
    pub fn clear(&mut self) {
        self.hist.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::millis(100);
        h.record(SimDuration::from_micros(1_500));
        h.record(SimDuration::from_micros(2_500));
        // Mean is exact (2000 us) even though buckets are 1 ms wide.
        assert_eq!(h.mean().unwrap().as_micros(), 2_000);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_overflow_counted_in_mean() {
        let mut h = Histogram::millis(10);
        h.record(ms(5));
        h.record(ms(50)); // beyond range
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean().unwrap(), SimDuration::from_micros(27_500));
        let cdf = h.cdf_points();
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn fraction_below_matches_paper_usage() {
        // Fig. 4 reads like: "only 50% of requests completed in < 20 ms".
        let mut h = Histogram::millis(100);
        for i in 0..100 {
            h.record(ms(i));
        }
        let f = h.fraction_below(ms(20));
        assert!((f - 0.20).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::millis(50);
        for i in [1u64, 1, 2, 3, 5, 8, 13, 21, 34] {
            h.record(ms(i));
        }
        let pts = h.cdf_points();
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_brackets_median() {
        let mut h = Histogram::millis(100);
        for i in 1..=99 {
            h.record(ms(i));
        }
        let med = h.quantile(0.5).unwrap();
        assert!(med >= ms(49) && med <= ms(51), "median {med}");
    }

    #[test]
    fn histogram_merge_and_clear() {
        let mut a = Histogram::millis(10);
        let mut b = Histogram::millis(10);
        a.record(ms(1));
        b.record(ms(2));
        b.record(ms(3));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean().unwrap(), ms(2));
        a.clear();
        assert_eq!(a.count(), 0);
        assert!(a.mean().is_none());
    }

    #[test]
    fn dist_table_zero_fraction() {
        let mut d = DistTable::new();
        for _ in 0..88 {
            d.record(0);
        }
        for _ in 0..12 {
            d.record(100);
        }
        assert!((d.fraction_of(0) - 0.88).abs() < 1e-12);
        assert_eq!(d.mean(), 12.0);
    }

    #[test]
    fn dist_table_mean_by_transform() {
        let mut d = DistTable::new();
        d.record(0);
        d.record(4);
        d.record(16);
        // Transform via sqrt: (0 + 2 + 4) / 3 = 2
        let m = d.mean_by(|v| (v as f64).sqrt());
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dist_table_merge() {
        let mut a = DistTable::new();
        let mut b = DistTable::new();
        a.record(5);
        b.record(5);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.count_of(5), 2);
        assert_eq!(a.count_of(7), 1);
    }

    #[test]
    fn dist_table_iter_sorted() {
        let mut d = DistTable::new();
        for v in [9, 1, 5, 1] {
            d.record(v);
        }
        let vals: Vec<_> = d.iter().collect();
        assert_eq!(vals, vec![(1, 2), (5, 1), (9, 1)]);
    }

    #[test]
    fn time_stats_roundtrip() {
        let mut t = TimeStats::new(1000);
        t.record(ms(10));
        t.record(ms(30));
        assert_eq!(t.mean_ms(), 20.0);
        assert_eq!(t.total(), ms(40));
        t.clear();
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn empty_stats_are_nan_or_none() {
        let h = Histogram::millis(10);
        assert!(h.mean().is_none());
        assert!(h.mean_ms().is_nan());
        assert!(h.fraction_below(ms(1)).is_nan());
        assert!(h.quantile(0.5).is_none());
        let d = DistTable::new();
        assert!(d.mean().is_nan());
        assert!(d.fraction_of(0).is_nan());
    }
}
