//! Deterministic discrete-event queue.
//!
//! The experiment harness merges several event sources (request arrivals,
//! disk completions, the 2-minute monitor timer, the periodic update
//! daemon) into a single time-ordered stream. Ties are broken by insertion
//! order so simulations are fully deterministic regardless of payload type.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the event queue: a payload scheduled at a time, with a
/// sequence number for stable FIFO tie-breaking.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events of type `E`.
///
/// Events scheduled for the same instant pop in the order they were pushed.
///
/// # Example
/// ```
/// use abr_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(20), "late");
/// q.schedule(SimTime::from_micros(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_micros(), e), (10, "early"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; debug builds panic, release
    /// builds clamp to the current clock so the event still fires.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// firing time. Returns `None` when no events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Current simulation clock (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(42));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "a");
        let (now, _) = q.pop().unwrap();
        // Schedule relative to the advanced clock.
        q.schedule(now + SimDuration::from_micros(5), "b");
        q.schedule(now + SimDuration::from_micros(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }
}
