//! Deterministic discrete-event queue.
//!
//! The experiment harness merges several event sources (request arrivals,
//! disk completions, the 2-minute monitor timer, the periodic update
//! daemon) into a single time-ordered stream. Ties are broken by insertion
//! order so simulations are fully deterministic regardless of payload type.
//!
//! # Implementation: a two-rung calendar (ladder) queue
//!
//! The queue keeps events in two rungs instead of a binary heap:
//!
//! * `near` — events firing before `horizon`, kept sorted **descending**
//!   by `(at, seq)` so the next event to fire sits at the tail and
//!   [`EventQueue::pop`] is a plain `Vec::pop` (O(1), no sift-down).
//! * `far` — everything at or past `horizon`, unsorted, append-only, with
//!   the minimum firing time cached in `far_min`.
//!
//! Most schedules land in `far` (workload trains are paced into the
//! future), so pushes are O(1) appends. When `near` drains, a batch of
//! upcoming events — those within `epoch` of the earliest far event — is
//! migrated out of `far` and sorted once. The epoch width adapts to the
//! observed event density so each migration moves a healthy batch: the
//! cost of the sort amortizes over the batch, and the scan of `far`
//! amortizes over the events it migrates.
//!
//! Correctness does not depend on the epoch: the pop order is the total
//! order on `(at, seq)` regardless of which rung an event occupies, and
//! the epoch itself evolves as a pure function of the push/pop sequence,
//! so identical schedules produce identical pop orders (and identical
//! result bytes) — same-tick events still pop in FIFO order because `seq`
//! increases monotonically.

use crate::time::SimTime;

/// An entry in the event queue: a payload scheduled at a time, with a
/// sequence number for stable FIFO tie-breaking.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

/// Migrations that move fewer events than this widen the next epoch.
const MIGRATE_MIN_BATCH: usize = 8;
/// Migrations that move more events than this narrow the next epoch.
const MIGRATE_MAX_BATCH: usize = 4096;
/// Epoch bounds, in microseconds of simulated time.
const EPOCH_MIN_US: u64 = 1_000; // 1ms
const EPOCH_MAX_US: u64 = 3_600_000_000; // 1h
/// First migration window: one second of simulated time, a few paced
/// request intervals wide.
const INITIAL_EPOCH_US: u64 = 1_000_000;

/// A time-ordered queue of events of type `E`.
///
/// Events scheduled for the same instant pop in the order they were pushed.
///
/// # Example
/// ```
/// use abr_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(20), "late");
/// q.schedule(SimTime::from_micros(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_micros(), e), (10, "early"));
/// ```
pub struct EventQueue<E> {
    /// Events with `at < horizon`, sorted descending by `(at, seq)`:
    /// the earliest event is last and pops in O(1).
    near: Vec<Scheduled<E>>,
    /// Events with `at >= horizon`, unsorted.
    far: Vec<Scheduled<E>>,
    /// Cached minimum firing time across `far` (meaningless when empty).
    far_min: SimTime,
    /// Every `near` event fires strictly before this; every `far` event
    /// fires at or after it.
    horizon: SimTime,
    /// Current migration window width, adapted to event density.
    epoch_us: u64,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            near: Vec::new(),
            far: Vec::new(),
            far_min: SimTime::MAX,
            horizon: SimTime::ZERO,
            epoch_us: INITIAL_EPOCH_US,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; debug builds panic, release
    /// builds clamp to the current clock so the event still fires.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        if at >= self.horizon {
            if at < self.far_min {
                self.far_min = at;
            }
            self.far.push(Scheduled { at, seq, event });
        } else {
            // `near` is sorted descending by (at, seq). The new event has
            // the largest seq so far, so among equal times it sorts first
            // in the array — and therefore pops last, preserving FIFO.
            let idx = self.near.partition_point(|e| e.at > at);
            self.near.insert(idx, Scheduled { at, seq, event });
        }
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// firing time. Returns `None` when no events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.near.is_empty() {
            self.migrate();
        }
        let s = self.near.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Move every far event within one epoch of the earliest into `near`
    /// and sort the batch. Called only when `near` is empty.
    fn migrate(&mut self) {
        if self.far.is_empty() {
            return;
        }
        // epoch_us >= 1, so the earliest far event always migrates.
        let cutoff = SimTime::from_micros(self.far_min.as_micros().saturating_add(self.epoch_us));
        let mut i = 0;
        while i < self.far.len() {
            if self.far[i].at < cutoff {
                self.near.push(self.far.swap_remove(i));
            } else {
                i += 1;
            }
        }
        // Keys (at, seq) are unique, so an unstable sort is deterministic.
        self.near
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
        self.horizon = cutoff;
        self.far_min = self.far.iter().map(|e| e.at).min().unwrap_or(SimTime::MAX);
        // Adapt the window so future migrations move a healthy batch.
        let moved = self.near.len();
        if moved < MIGRATE_MIN_BATCH {
            self.epoch_us = (self.epoch_us.saturating_mul(2)).min(EPOCH_MAX_US);
        } else if moved > MIGRATE_MAX_BATCH {
            self.epoch_us = (self.epoch_us / 2).max(EPOCH_MIN_US);
        }
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self.near.last() {
            Some(e) => Some(e.at),
            None if !self.far.is_empty() => Some(self.far_min),
            None => None,
        }
    }

    /// Current simulation clock (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near.len() + self.far.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.near.is_empty() && self.far.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(42));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "a");
        let (now, _) = q.pop().unwrap();
        // Schedule relative to the advanced clock.
        q.schedule(now + SimDuration::from_micros(5), "b");
        q.schedule(now + SimDuration::from_micros(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_sees_across_both_rungs() {
        let mut q = EventQueue::new();
        // Far-future event first: lands in the far rung.
        q.schedule(t(10_000_000), "far");
        assert_eq!(q.peek_time(), Some(t(10_000_000)));
        // Pop migrates it; a near-past-horizon schedule then splits rungs.
        assert_eq!(q.pop().unwrap().1, "far");
        q.schedule(t(10_000_001), "a");
        q.schedule(t(90_000_000), "b");
        assert_eq!(q.peek_time(), Some(t(10_000_001)));
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.peek_time(), Some(t(90_000_000)));
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn migration_batches_do_not_reorder_ties() {
        // Many events at identical times spread far apart, forcing several
        // migrations; FIFO within each tick must survive every batch.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for round in 0..50u64 {
            for k in 0..20u64 {
                let id = round * 20 + k;
                q.schedule(t(round * 5_000_000), id);
                expect.push(id);
            }
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, expect);
    }
}
