//! Arrival processes.
//!
//! §5.2 of the paper: "Although the disks were lightly utilized, the
//! request arrival pattern was very bursty. Arrival bursts produce long
//! queues." Reproducing the waiting-time results therefore requires a
//! bursty arrival model, not plain Poisson. Two processes are provided:
//!
//! * [`Poisson`] — memoryless arrivals at a fixed rate (baseline / light
//!   background traffic).
//! * [`OnOff`] — a two-state Markov-modulated process: long silent gaps
//!   alternate with short ON periods during which arrivals come at a much
//!   higher rate. This is the classic model for interactive file-server
//!   traffic (user think time vs. request trains).
//!
//! Both yield an iterator-like `next_after` API so the simulation can pull
//! the next arrival lazily.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Poisson arrivals: exponential inter-arrival times with a given mean.
#[derive(Debug, Clone)]
pub struct Poisson {
    mean_gap_us: f64,
}

impl Poisson {
    /// Arrivals at `rate_per_sec` events per second on average.
    ///
    /// # Panics
    /// Panics if the rate is not positive.
    pub fn per_sec(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        Poisson {
            mean_gap_us: 1e6 / rate_per_sec,
        }
    }

    /// The next arrival strictly after `now`.
    pub fn next_after(&self, now: SimTime, rng: &mut SimRng) -> SimTime {
        let gap = rng.exp(self.mean_gap_us).max(1.0) as u64;
        now + SimDuration::from_micros(gap)
    }
}

/// Parameters of the ON/OFF bursty arrival process.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct OnOffParams {
    /// Mean length of an ON (burst) period.
    pub mean_on: SimDuration,
    /// Mean length of an OFF (silence) period.
    pub mean_off: SimDuration,
    /// Arrival rate during ON periods, events/second.
    pub on_rate_per_sec: f64,
}

impl OnOffParams {
    /// Long-run average arrival rate (events/second).
    pub fn mean_rate_per_sec(&self) -> f64 {
        let on = self.mean_on.as_secs_f64();
        let off = self.mean_off.as_secs_f64();
        self.on_rate_per_sec * on / (on + off)
    }
}

/// A two-state (ON/OFF) bursty arrival process.
///
/// While ON, arrivals are Poisson at `on_rate_per_sec`; while OFF, there
/// are no arrivals. State holding times are exponential. The process keeps
/// internal state (current phase and its end time), so one instance models
/// one stream.
#[derive(Debug, Clone)]
pub struct OnOff {
    params: OnOffParams,
    /// End of the current ON period, if we are in one.
    on_until: Option<SimTime>,
    /// When the next ON period begins (valid while OFF).
    next_on: SimTime,
}

impl OnOff {
    /// Create the process; the first ON period starts at a random point
    /// within one mean OFF period of time zero.
    pub fn new(params: OnOffParams, rng: &mut SimRng) -> Self {
        assert!(params.on_rate_per_sec > 0.0);
        assert!(params.mean_on > SimDuration::ZERO);
        assert!(params.mean_off > SimDuration::ZERO);
        let first_on = rng.exp(params.mean_off.as_micros() as f64) as u64;
        OnOff {
            params,
            on_until: None,
            next_on: SimTime::from_micros(first_on),
        }
    }

    /// The next arrival strictly after `now`.
    pub fn next_after(&mut self, now: SimTime, rng: &mut SimRng) -> SimTime {
        let mean_gap_us = 1e6 / self.params.on_rate_per_sec;
        let mut t = now;
        loop {
            match self.on_until {
                Some(end) if t < end => {
                    // In an ON period: Poisson arrival, if it lands before
                    // the period ends.
                    let gap = rng.exp(mean_gap_us).max(1.0) as u64;
                    let cand = t + SimDuration::from_micros(gap);
                    if cand < end {
                        return cand;
                    }
                    // Burst ended before the candidate arrival: go OFF.
                    let off = rng.exp(self.params.mean_off.as_micros() as f64).max(1.0) as u64;
                    self.next_on = end + SimDuration::from_micros(off);
                    self.on_until = None;
                    t = end;
                }
                _ => {
                    // OFF: jump to the start of the next ON period.
                    let start = self.next_on.max(t);
                    let on = rng.exp(self.params.mean_on.as_micros() as f64).max(1.0) as u64;
                    self.on_until = Some(start + SimDuration::from_micros(on));
                    t = start;
                }
            }
        }
    }
}

/// The periodic-update write burst pattern.
///
/// SunOS's `update` daemon flushes all dirty buffers every `period`
/// (classically 30 s). §5.2 attributes the bursty *write* arrival pattern
/// to this policy. This helper just exposes the tick times; the file
/// system's buffer cache decides what to flush at each tick.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicTicks {
    period: SimDuration,
}

impl PeriodicTicks {
    /// Ticks every `period`.
    ///
    /// # Panics
    /// Panics if the period is zero.
    pub fn new(period: SimDuration) -> Self {
        assert!(period > SimDuration::ZERO);
        PeriodicTicks { period }
    }

    /// The first tick at or after `now`.
    pub fn next_at_or_after(&self, now: SimTime) -> SimTime {
        let p = self.period.as_micros();
        let n = now.as_micros();
        SimTime::from_micros(n.div_ceil(p) * p)
    }

    /// The tick period.
    pub fn period(&self) -> SimDuration {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_close() {
        let p = Poisson::per_sec(50.0);
        let mut rng = SimRng::new(1);
        let mut now = SimTime::ZERO;
        let horizon = SimTime::from_micros(200_000_000); // 200 s
        let mut count = 0u64;
        while now < horizon {
            now = p.next_after(now, &mut rng);
            count += 1;
        }
        let rate = count as f64 / 200.0;
        assert!((rate - 50.0).abs() < 3.0, "rate {rate}");
    }

    #[test]
    fn poisson_strictly_advances() {
        let p = Poisson::per_sec(1e5);
        let mut rng = SimRng::new(2);
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            let next = p.next_after(now, &mut rng);
            assert!(next > now);
            now = next;
        }
    }

    fn onoff_params() -> OnOffParams {
        OnOffParams {
            mean_on: SimDuration::from_millis(500),
            mean_off: SimDuration::from_secs(10),
            on_rate_per_sec: 200.0,
        }
    }

    #[test]
    fn onoff_mean_rate_formula() {
        let p = onoff_params();
        // 200 * 0.5/(0.5+10) ~ 9.52/s
        assert!((p.mean_rate_per_sec() - 9.5238).abs() < 0.01);
    }

    #[test]
    fn onoff_long_run_rate_matches() {
        let mut rng = SimRng::new(3);
        let mut proc = OnOff::new(onoff_params(), &mut rng);
        let horizon = SimTime::from_micros(3_600_000_000); // 1 h
        let mut now = SimTime::ZERO;
        let mut count = 0u64;
        loop {
            now = proc.next_after(now, &mut rng);
            if now >= horizon {
                break;
            }
            count += 1;
        }
        let rate = count as f64 / 3600.0;
        let expect = onoff_params().mean_rate_per_sec();
        assert!(
            (rate - expect).abs() < 0.15 * expect,
            "rate {rate} vs {expect}"
        );
    }

    #[test]
    fn onoff_is_bursty() {
        // Squared coefficient of variation of inter-arrival gaps must be
        // well above 1 (Poisson has CV^2 = 1).
        let mut rng = SimRng::new(4);
        let mut proc = OnOff::new(onoff_params(), &mut rng);
        let mut now = SimTime::ZERO;
        let mut gaps = Vec::new();
        for _ in 0..20_000 {
            let next = proc.next_after(now, &mut rng);
            gaps.push((next - now).as_secs_f64());
            now = next;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 3.0, "CV^2 {cv2} not bursty");
    }

    #[test]
    fn periodic_ticks_align() {
        let t = PeriodicTicks::new(SimDuration::from_secs(30));
        assert_eq!(
            t.next_at_or_after(SimTime::ZERO),
            SimTime::ZERO // 0 is a multiple of the period
        );
        assert_eq!(
            t.next_at_or_after(SimTime::from_micros(1)),
            SimTime::from_micros(30_000_000)
        );
        assert_eq!(
            t.next_at_or_after(SimTime::from_micros(30_000_000)),
            SimTime::from_micros(30_000_000)
        );
        assert_eq!(
            t.next_at_or_after(SimTime::from_micros(30_000_001)),
            SimTime::from_micros(60_000_000)
        );
    }
}
