//! Simulated time.
//!
//! The paper's driver measures times "with microsecond resolution"
//! (§4.1.5), so simulated time is an integer count of microseconds since
//! the start of the simulation. Two newtypes keep instants and durations
//! from being mixed up: [`SimTime`] is a point on the simulation clock,
//! [`SimDuration`] is a length of time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// A time that compares greater than every reachable simulation time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// The raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`; saturates
    /// to zero in release builds, since a non-causal difference is always a
    /// logic error upstream.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "non-causal time difference");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative values clamp to zero.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms * 1_000.0).round().max(0.0) as u64)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds (the unit the paper reports in).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "negative duration");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1_000_000;
        let (h, m, s) = (secs / 3600, (secs / 60) % 60, secs % 60);
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_mins(2).as_micros(), 120_000_000);
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime::from_micros(500);
        let d = SimDuration::from_millis(2);
        let t1 = t0 + d;
        assert_eq!(t1.since(t0), d);
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.as_micros(), 2_500);
    }

    #[test]
    fn fractional_millis_round() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(0.0004).as_micros(), 0);
        assert_eq!(SimDuration::from_millis_f64(-3.0).as_micros(), 0);
        assert_eq!(SimDuration::from_millis_f64(18.21).as_millis_f64(), 18.21);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_micros(3_723_000_000); // 1h 2m 3s
        assert_eq!(t.to_string(), "01:02:03");
        assert_eq!(SimDuration::from_micros(1234).to_string(), "1.234ms");
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3).as_micros(), 30_000);
        assert_eq!((d / 4).as_micros(), 2_500);
    }

    #[test]
    fn max_of_instants() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn saturating_duration_sub() {
        let a = SimDuration::from_micros(5);
        let b = SimDuration::from_micros(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_micros(4));
    }
}
