//! Deterministic random numbers.
//!
//! Every experiment in the reproduction is keyed by a single `u64` seed.
//! Independent components (arrival process, file popularity, drift, ...)
//! draw from *named substreams* derived from that seed, so adding a new
//! consumer of randomness never perturbs the draws seen by existing ones —
//! a property the on/off day-pair comparisons rely on.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random number generator for simulation use.
///
/// Wraps [`SmallRng`] (fast, non-cryptographic — appropriate for
/// simulation) and adds substream derivation.
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Create a generator from a master seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The master seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent substream identified by `name`.
    ///
    /// The derivation mixes the master seed with a hash of the name
    /// (SplitMix64 finalizer over FNV-1a of the bytes), so distinct names
    /// give statistically independent streams and the same name always
    /// gives the same stream.
    pub fn substream(&self, name: &str) -> SimRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        SimRng::new(splitmix64(self.seed ^ h))
    }

    /// Derive an independent substream identified by an integer index
    /// (e.g. a day number).
    pub fn substream_idx(&self, name: &str, idx: u64) -> SimRng {
        let base = self.substream(name);
        SimRng::new(splitmix64(base.seed ^ splitmix64(idx)))
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.inner.gen_range(0..bound)
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index(0)");
        self.inner.gen_range(0..bound)
    }

    /// Bernoulli trial with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed `f64` with the given mean (inverse
    /// transform sampling).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function, also
/// useful as a stateless hash for deterministic derived values.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_stable_and_distinct() {
        let root = SimRng::new(42);
        let mut s1 = root.substream("arrivals");
        let mut s1b = root.substream("arrivals");
        let mut s2 = root.substream("popularity");
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn indexed_substreams_distinct_per_index() {
        let root = SimRng::new(42);
        let mut d0 = root.substream_idx("day", 0);
        let mut d1 = root.substream_idx("day", 1);
        assert_ne!(d0.next_u64(), d1.next_u64());
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(1);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exp(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(2);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_rate_is_close() {
        let mut r = SimRng::new(3);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }
}
