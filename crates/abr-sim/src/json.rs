//! Dependency-free JSON values with deterministic serialization.
//!
//! The experiment regenerators and the benchmark harness need real,
//! machine-readable JSON artifacts (`results/<id>.json`,
//! `BENCH_experiments.json`) whose bytes are *identical* across runs and
//! across thread schedules — the CI determinism gate literally `cmp`s
//! them. This module provides:
//!
//! * [`JsonValue`] — an order-preserving JSON tree (object keys keep
//!   insertion order, so serial and parallel runs emit identical bytes).
//! * [`jsn!`](crate::jsn) — a `serde_json::json!`-style constructor macro.
//! * Deterministic writers ([`JsonValue::pretty`], `Display`): floats are
//!   printed with Rust's shortest round-trip representation, objects in
//!   insertion order, no locale or hash-order dependence anywhere.
//! * A strict parser ([`JsonValue::parse`]) for `bench-compare` and for
//!   reading artifacts back in tests.

use std::fmt;

/// An order-preserving JSON value.
///
/// Integers keep their signedness ([`JsonValue::Int`] / [`JsonValue::UInt`])
/// so `u64` reference counts survive a write/parse round trip exactly;
/// numeric comparisons across variants are supported via `PartialEq`.
#[derive(Debug, Clone, Default)]
pub enum JsonValue {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (counts can exceed `i64::MAX`).
    UInt(u64),
    /// A double. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

static NULL: JsonValue = JsonValue::Null;

impl JsonValue {
    /// An empty object.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// An empty array.
    pub fn array() -> JsonValue {
        JsonValue::Array(Vec::new())
    }

    /// Insert (or replace) `key` in an object. Turns `Null` into an
    /// object first; panics on any other non-object variant.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) {
        if matches!(self, JsonValue::Null) {
            *self = JsonValue::object();
        }
        let JsonValue::Object(entries) = self else {
            panic!("insert on non-object JsonValue");
        };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
    }

    /// Append to an array. Turns `Null` into an array first; panics on
    /// any other non-array variant.
    pub fn push(&mut self, value: impl Into<JsonValue>) {
        if matches!(self, JsonValue::Null) {
            *self = JsonValue::array();
        }
        let JsonValue::Array(items) = self else {
            panic!("push on non-array JsonValue");
        };
        items.push(value.into());
    }

    /// `true` for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any numeric variant as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::UInt(n) => Some(*n as f64),
            JsonValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Any integral variant as `i64` (floats only when exactly integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            JsonValue::UInt(n) => i64::try_from(*n).ok(),
            JsonValue::Float(x) if x.fract() == 0.0 && x.abs() < 9.0e15 => Some(*x as i64),
            _ => None,
        }
    }

    /// Any non-negative integral variant as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) => u64::try_from(*n).ok(),
            JsonValue::UInt(n) => Some(*n),
            JsonValue::Float(x) if x.fract() == 0.0 && *x >= 0.0 && *x < 9.0e15 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Vec<(String, JsonValue)>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field by key (`None` on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by index (`None` when out of range or non-array).
    pub fn get_idx(&self, idx: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Array(a) => a.get(idx),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline —
    /// the on-disk artifact format. Deterministic byte-for-byte.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(entries) if !entries.is_empty() => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => {
                use fmt::Write as _;
                let _ = write!(out, "{other}");
            }
        }
    }

    /// Parse a JSON document (strict: one value, nothing but whitespace
    /// after it).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    /// Compact serialization. Floats use Rust's shortest round-trip
    /// formatting (`{:?}`), which is deterministic; non-finite floats
    /// become `null` (JSON has no NaN/Inf).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Int(n) => write!(f, "{n}"),
            JsonValue::UInt(n) => write!(f, "{n}"),
            JsonValue::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            JsonValue::Float(_) => f.write_str("null"),
            JsonValue::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    write_escaped(&mut buf, k);
                    f.write_str(&buf)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            message: msg.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our
                            // artifacts; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError {
                message: format!("invalid number `{text}`"),
                offset: start,
            })
    }
}

// ---- indexing ----------------------------------------------------------

impl std::ops::Index<&str> for JsonValue {
    type Output = JsonValue;
    /// Lenient indexing like `serde_json`: missing keys yield `Null`.
    fn index(&self, key: &str) -> &JsonValue {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for JsonValue {
    type Output = JsonValue;
    /// Lenient indexing: out-of-range yields `Null`.
    fn index(&self, idx: usize) -> &JsonValue {
        self.get_idx(idx).unwrap_or(&NULL)
    }
}

// ---- equality ----------------------------------------------------------

impl PartialEq for JsonValue {
    /// Structural equality; numbers compare across variants
    /// (`Int(2) == Float(2.0)`).
    fn eq(&self, other: &JsonValue) -> bool {
        use JsonValue::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

macro_rules! impl_num_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for JsonValue {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<JsonValue> for $t {
            fn eq(&self, other: &JsonValue) -> bool {
                other == self
            }
        }
    )*};
}
impl_num_eq!(i8, i16, i32, i64, u8, u16, u32, u64, usize, f32, f64);

impl PartialEq<bool> for JsonValue {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for JsonValue {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for JsonValue {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

// ---- conversions -------------------------------------------------------

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for JsonValue {
            fn from(v: $t) -> JsonValue {
                JsonValue::Int(v as i64)
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, isize);

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for JsonValue {
            fn from(v: $t) -> JsonValue {
                JsonValue::UInt(v as u64)
            }
        }
    )*};
}
impl_from_uint!(u8, u16, u32, u64, usize);

impl From<f32> for JsonValue {
    fn from(v: f32) -> JsonValue {
        JsonValue::Float(f64::from(v))
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::Float(v)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> JsonValue {
        JsonValue::Bool(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> JsonValue {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> JsonValue {
        JsonValue::Str(v)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> JsonValue {
        v.map_or(JsonValue::Null, Into::into)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> JsonValue {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<JsonValue>> From<&[T]> for JsonValue {
    fn from(v: &[T]) -> JsonValue {
        JsonValue::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// References to convertible values (e.g. the `Vec<&u64>` an iterator
/// `collect` produces) serialize like the values themselves.
impl<T: Clone + Into<JsonValue>> From<&T> for JsonValue {
    fn from(v: &T) -> JsonValue {
        v.clone().into()
    }
}

impl<A: Into<JsonValue>, B: Into<JsonValue>> From<(A, B)> for JsonValue {
    fn from((a, b): (A, B)) -> JsonValue {
        JsonValue::Array(vec![a.into(), b.into()])
    }
}

impl<A: Into<JsonValue>, B: Into<JsonValue>, C: Into<JsonValue>> From<(A, B, C)> for JsonValue {
    fn from((a, b, c): (A, B, C)) -> JsonValue {
        JsonValue::Array(vec![a.into(), b.into(), c.into()])
    }
}

/// Build a [`JsonValue`] with `serde_json::json!`-like syntax.
///
/// Supported forms: `jsn!(null)`, `jsn!(expr)`, `jsn!([e1, e2, ...])`,
/// and `jsn!({ "key": expr, ... })`. Unlike `serde_json`, nested
/// object/array *literals* inside an object must be wrapped in their own
/// `jsn!` call (`"inner": jsn!({ ... })`) — expression values are
/// otherwise arbitrary.
///
/// ```
/// use abr_sim::jsn;
/// let v = jsn!({ "id": "fig8", "points": vec![1.0, 2.5], "meta": jsn!({ "n": 2 }) });
/// assert_eq!(v["points"][1], 2.5);
/// assert_eq!(v.to_string(), r#"{"id":"fig8","points":[1.0,2.5],"meta":{"n":2}}"#);
/// ```
#[macro_export]
macro_rules! jsn {
    (null) => {
        $crate::json::JsonValue::Null
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::json::JsonValue::Array(vec![ $($crate::json::JsonValue::from($elem)),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut obj = $crate::json::JsonValue::object();
        $( obj.insert($key, $crate::json::JsonValue::from($value)); )*
        obj
    }};
    ($other:expr) => {
        $crate::json::JsonValue::from($other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_values() {
        let rows = vec![jsn!({ "a": 1 }), jsn!({ "a": 2 })];
        let v = jsn!({
            "name": "x",
            "rows": rows,
            "pair": (3u64, 4.5f64),
            "none": Option::<u64>::None,
            "flag": true,
        });
        assert_eq!(v["rows"][1]["a"], 2);
        assert_eq!(v["pair"][0], 3);
        assert!(v["none"].is_null());
        assert_eq!(v["flag"], true);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = jsn!({
            "s": "a \"quoted\"\nline",
            "n": -7,
            "u": 18_446_744_073_709_551_615u64,
            "f": 1.55,
            "arr": jsn!([1, jsn!(null), jsn!({ "k": 2.0 })]),
        });
        for text in [v.to_string(), v.pretty()] {
            let back = JsonValue::parse(&text).expect("parses");
            assert_eq!(back, v);
        }
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = jsn!({ "b": 1, "a": jsn!([true, jsn!(null)]) });
        assert_eq!(
            v.pretty(),
            "{\n  \"b\": 1,\n  \"a\": [\n    true,\n    null\n  ]\n}\n"
        );
        // Insertion order, not alphabetical.
        assert!(v.pretty().find("\"b\"").unwrap() < v.pretty().find("\"a\"").unwrap());
    }

    #[test]
    fn float_formatting_is_roundtrip_and_integral_floats_keep_a_dot() {
        assert_eq!(jsn!(2.0f64).to_string(), "2.0");
        assert_eq!(jsn!(0.1f64).to_string(), "0.1");
        assert_eq!(jsn!(f64::NAN).to_string(), "null");
        let x = 1.0 / 3.0;
        let JsonValue::Float(back) = JsonValue::parse(&jsn!(x).to_string()).unwrap() else {
            panic!("float expected");
        };
        assert_eq!(back, x);
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\x\"",
            "{\"a\":}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_preserve_signedness() {
        let v = JsonValue::parse("[9223372036854775808, -3, 2.5]").unwrap();
        assert!(matches!(v[0], JsonValue::UInt(_)));
        assert!(matches!(v[1], JsonValue::Int(-3)));
        assert!(matches!(v[2], JsonValue::Float(_)));
        assert_eq!(v[0].as_u64(), Some(9223372036854775808));
        assert_eq!(v[1].as_i64(), Some(-3));
    }

    #[test]
    fn insert_replaces_existing_keys() {
        let mut v = JsonValue::object();
        v.insert("k", 1);
        v.insert("k", 2);
        assert_eq!(v.as_object().unwrap().len(), 1);
        assert_eq!(v["k"], 2);
    }
}
