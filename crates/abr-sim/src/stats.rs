//! Summary statistics across experiment days.
//!
//! The paper's summary tables (Tables 2, 4, 5, 6) report the minimum,
//! average and maximum of *daily mean* times over all "on" days or all
//! "off" days. [`Summary`] accumulates exactly that. [`OnlineStats`] is a
//! Welford accumulator for mean/variance when a spread estimate is useful.

use serde::{Deserialize, Serialize};

/// Min / average / max of a sequence of daily values (the shape of every
/// summary row in the paper's tables).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one daily value. Non-finite values are a logic error upstream
    /// and are rejected.
    ///
    /// # Panics
    /// Panics if `v` is NaN or infinite.
    pub fn add(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite summary value {v}");
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Minimum, or NaN if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Average, or NaN if empty.
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Maximum, or NaN if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Format as the paper's `min avg max` triple with two decimals.
    pub fn triple(&self) -> String {
        format!("{:6.2} {:6.2} {:6.2}", self.min(), self.avg(), self.max())
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean, or NaN if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance, or NaN if empty.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation, or NaN if empty.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_min_avg_max() {
        let s: Summary = [3.0, 1.0, 2.0].into_iter().collect();
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.avg(), 2.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn summary_empty_is_nan() {
        let s = Summary::new();
        assert!(s.min().is_nan());
        assert!(s.avg().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn summary_rejects_nan() {
        Summary::new().add(f64::NAN);
    }

    #[test]
    fn summary_triple_format() {
        let s: Summary = [18.70, 19.46, 21.51].into_iter().collect();
        assert_eq!(s.triple(), " 18.70  19.89  21.51");
    }

    #[test]
    fn online_stats_match_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.add(x);
        }
        assert!((o.mean() - 5.0).abs() < 1e-12);
        assert!((o.variance() - 4.0).abs() < 1e-12);
        assert!((o.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_single_value() {
        let mut o = OnlineStats::new();
        o.add(42.0);
        assert_eq!(o.mean(), 42.0);
        assert_eq!(o.variance(), 0.0);
    }
}
