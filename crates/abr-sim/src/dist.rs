//! Random distributions for workload modelling.
//!
//! The paper's workloads are characterized by *highly skewed* block request
//! distributions (§5.4: "fewer than 2000 blocks absorbed all of the
//! requests, and the 100 hottest blocks absorbed about 90%"). [`Zipf`]
//! provides a rank-frequency law with a numeric calibration routine
//! ([`Zipf::fit_top_share`]) that solves for the exponent reproducing a
//! target top-k share, so workload profiles can be pinned directly to the
//! paper's measured skew. [`Weighted`] samples from an arbitrary discrete
//! weight table in O(log n).

use crate::rng::SimRng;

/// A Zipf-like rank-frequency distribution over ranks `0..n`.
///
/// Rank `r` (0-based) has weight `1 / (r + 1)^s`. Sampling uses a
/// precomputed cumulative table with binary search: O(log n) per draw,
/// exact (no rejection), and deterministic given the RNG stream.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Create a Zipf distribution over `n` ranks with exponent `s >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(s.is_finite() && s >= 0.0, "bad Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point leaving the last entry below 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf, s }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Sample a rank in `0..n` (0 is the most popular).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        // partition_point returns the count of entries < u, i.e. the first
        // rank whose cumulative probability reaches u. For the skewed
        // exponents the workloads use, most draws land in the first few
        // ranks, so search the (cache-resident) head before binary-
        // searching the full table — same result, far fewer misses.
        const HEAD: usize = 64;
        if let Some(&h) = self.cdf.get(HEAD - 1) {
            if u <= h {
                return self.cdf[..HEAD].partition_point(|&c| c < u);
            }
        }
        self.cdf.partition_point(|&c| c < u)
    }

    /// Fraction of probability mass on the `k` most popular ranks.
    pub fn top_share(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else if k >= self.cdf.len() {
            1.0
        } else {
            self.cdf[k - 1]
        }
    }

    /// Find the exponent `s` such that the top `k` ranks of `n` carry
    /// (approximately) `share` of the mass, by bisection on `s`.
    ///
    /// Used to pin synthetic workloads to the paper's measured skew
    /// (e.g. `fit_top_share(2000, 100, 0.90)` for the *system* file
    /// system). Returns the fitted distribution.
    ///
    /// ```
    /// use abr_sim::dist::Zipf;
    /// // SS5.4 of the paper: top 100 of <2000 blocks absorb ~90%.
    /// let z = Zipf::fit_top_share(2000, 100, 0.90);
    /// assert!((z.top_share(100) - 0.90).abs() < 1e-6);
    /// ```
    ///
    /// # Panics
    /// Panics on degenerate arguments (`k == 0`, `k >= n`, share outside
    /// `(0, 1)`).
    pub fn fit_top_share(n: usize, k: usize, share: f64) -> Self {
        assert!(k > 0 && k < n, "need 0 < k < n");
        assert!(share > 0.0 && share < 1.0, "share must be in (0,1)");
        let uniform_share = k as f64 / n as f64;
        assert!(
            share > uniform_share,
            "target share {share} below uniform share {uniform_share}; not Zipf-representable"
        );
        let (mut lo, mut hi) = (0.0_f64, 16.0_f64);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if Zipf::new(n, mid).top_share(k) < share {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Zipf::new(n, 0.5 * (lo + hi))
    }
}

/// A discrete distribution over arbitrary weights, sampled in O(log n).
#[derive(Debug, Clone)]
pub struct Weighted {
    cdf: Vec<f64>,
}

impl Weighted {
    /// Build from a slice of non-negative weights (at least one positive).
    ///
    /// # Panics
    /// Panics if the slice is empty, any weight is negative or non-finite,
    /// or all weights are zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight table");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "all weights zero");
        for c in &mut cdf {
            *c /= acc;
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        Weighted { cdf }
    }

    /// Sample an index in `0..len`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the table is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// A bounded Pareto-ish discrete size distribution, used for file sizes.
///
/// Real file-size distributions are heavy-tailed with many small files
/// ([Ousterhout 85] measured BSD traces). This helper samples sizes in
/// `[min, max]` bytes with density proportional to `size^-alpha`, over a
/// logarithmic grid (64 buckets), which reproduces the "most files are
/// small, a few are huge" shape without needing floating-point pow per
/// draw.
#[derive(Debug, Clone)]
pub struct FileSizes {
    bucket_lo: Vec<u64>,
    bucket_hi: Vec<u64>,
    weights: Weighted,
}

impl FileSizes {
    /// Build the distribution over `[min, max]` bytes with tail exponent
    /// `alpha` (typical: 1.0–1.5).
    ///
    /// # Panics
    /// Panics unless `0 < min < max`.
    pub fn new(min: u64, max: u64, alpha: f64) -> Self {
        assert!(min > 0 && min < max, "need 0 < min < max");
        const BUCKETS: usize = 64;
        let lmin = (min as f64).ln();
        let lmax = (max as f64).ln();
        let mut bucket_lo = Vec::with_capacity(BUCKETS);
        let mut bucket_hi = Vec::with_capacity(BUCKETS);
        let mut w = Vec::with_capacity(BUCKETS);
        for i in 0..BUCKETS {
            let a = (lmin + (lmax - lmin) * i as f64 / BUCKETS as f64).exp();
            let b = (lmin + (lmax - lmin) * (i + 1) as f64 / BUCKETS as f64).exp();
            let lo = a.round().max(min as f64) as u64;
            let hi = (b.round() as u64).min(max).max(lo);
            bucket_lo.push(lo);
            bucket_hi.push(hi);
            // Weight = width x density at the geometric midpoint.
            let mid = (a * b).sqrt();
            w.push((b - a).max(1.0) * mid.powf(-alpha));
        }
        FileSizes {
            bucket_lo,
            bucket_hi,
            weights: Weighted::new(&w),
        }
    }

    /// Sample a file size in bytes.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let i = self.weights.sample(rng);
        let (lo, hi) = (self.bucket_lo[i], self.bucket_hi[i]);
        if lo == hi {
            lo
        } else {
            lo + rng.below(hi - lo + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(z: &Zipf, rng: &mut SimRng, draws: usize) -> Vec<usize> {
        let mut h = vec![0usize; z.n()];
        for _ in 0..draws {
            h[z.sample(rng)] += 1;
        }
        h
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SimRng::new(1);
        let h = histogram(&z, &mut rng, 100_000);
        assert!(h[0] > h[10]);
        assert!(h[10] > h[90]);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.top_share(k) - k as f64 / 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_samples_within_range() {
        let z = Zipf::new(17, 1.3);
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn fit_top_share_hits_paper_skew() {
        // §5.4: top 100 of <2000 active blocks absorb ~90% of requests.
        let z = Zipf::fit_top_share(2000, 100, 0.90);
        let got = z.top_share(100);
        assert!((got - 0.90).abs() < 1e-6, "top-100 share {got}");
        // And empirically, from samples:
        let mut rng = SimRng::new(3);
        let h = histogram(&z, &mut rng, 200_000);
        let top: usize = h[..100].iter().sum();
        let frac = top as f64 / 200_000.0;
        assert!((frac - 0.90).abs() < 0.01, "sampled top-100 share {frac}");
    }

    #[test]
    fn fit_rejects_sub_uniform_target() {
        let r = std::panic::catch_unwind(|| Zipf::fit_top_share(100, 50, 0.4));
        assert!(r.is_err());
    }

    #[test]
    fn weighted_respects_weights() {
        let w = Weighted::new(&[1.0, 0.0, 3.0]);
        let mut rng = SimRng::new(4);
        let mut h = [0usize; 3];
        for _ in 0..40_000 {
            h[w.sample(&mut rng)] += 1;
        }
        assert_eq!(h[1], 0);
        let ratio = h[2] as f64 / h[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn weighted_rejects_all_zero() {
        let _ = Weighted::new(&[0.0, 0.0]);
    }

    #[test]
    fn file_sizes_in_range_and_skewed_small() {
        let fs = FileSizes::new(512, 4 << 20, 1.2);
        let mut rng = SimRng::new(5);
        let mut small = 0;
        for _ in 0..10_000 {
            let s = fs.sample(&mut rng);
            assert!((512..=4 << 20).contains(&s));
            if s < 64 << 10 {
                small += 1;
            }
        }
        // Most files should be small.
        assert!(small > 6_000, "only {small} of 10000 below 64K");
    }
}
