//! Model-based property test for the calendar event queue.
//!
//! The ladder/calendar rework of `EventQueue` must be observationally
//! identical to the `BinaryHeap` implementation it replaced: pops come
//! out in ascending `(at, seq)` order, so events at the same tick keep
//! FIFO order. The reference model here *is* that old implementation — a
//! `BinaryHeap<Reverse<(at, seq, id)>>` — driven through randomized
//! interleavings of schedules and pops, including heavy same-tick bursts
//! that stress FIFO stability across migration batches.

use abr_sim::{EventQueue, SimTime};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The pre-rework queue, reduced to its ordering semantics.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    next_seq: u64,
    now: u64,
}

impl HeapModel {
    fn schedule(&mut self, at: u64, id: u32) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.next_seq, id)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let Reverse((at, _, id)) = self.heap.pop()?;
        self.now = at;
        Some((at, id))
    }

    fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }
}

/// One step of a generated schedule: how far past `now` the event fires.
/// Zero offsets produce same-tick ties; large offsets force events into
/// the far rung and across several migration epochs.
fn offset_for(shape: u64, magnitude: u64) -> u64 {
    match shape % 8 {
        // Same-tick burst fodder (ties with whatever fired last).
        0 | 1 => 0,
        // Sub-epoch: lands in the near rung after a migration.
        2 | 3 => magnitude % 1_000,
        // Around the initial 1s epoch boundary.
        4 | 5 => 900_000 + magnitude % 200_000,
        // Far future: several epochs out (up to ~100s).
        _ => magnitude % 100_000_000,
    }
}

proptest! {
    #[test]
    fn calendar_queue_matches_binary_heap_model(
        ops in proptest::collection::vec(
            (proptest::any::<u64>(), proptest::any::<u64>(), 0u64..4),
            1..400,
        ),
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut model = HeapModel::default();
        let mut next_id: u32 = 0;

        for (shape, magnitude, action) in ops {
            // action 0..3: schedule one event (3:1 schedule:pop mix keeps
            // the queue populated); action 3: pop and compare.
            if action < 3 {
                let at = q.now().as_micros() + offset_for(shape, magnitude);
                q.schedule(SimTime::from_micros(at), next_id);
                model.schedule(at, next_id);
                next_id += 1;
            } else {
                prop_assert_eq!(q.peek_time().map(SimTime::as_micros), model.peek_time());
                let got = q.pop().map(|(t, e)| (t.as_micros(), e));
                prop_assert_eq!(got, model.pop());
            }
            prop_assert_eq!(q.len() as u64, model.heap.len() as u64);
        }

        // Drain: every remaining event must come out in model order.
        loop {
            prop_assert_eq!(q.peek_time().map(SimTime::as_micros), model.peek_time());
            let got = q.pop().map(|(t, e)| (t.as_micros(), e));
            let want = model.pop();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
        prop_assert!(q.is_empty());
    }

    #[test]
    fn same_tick_bursts_stay_fifo_through_migrations(
        burst in 1usize..64,
        spacing in 1u64..5_000_000,
        rounds in 1usize..20,
    ) {
        // All events scheduled up front at `rounds` distinct ticks,
        // `burst` ties per tick, spaced to straddle migration epochs.
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut expect = Vec::new();
        for r in 0..rounds {
            for b in 0..burst {
                let id = r * burst + b;
                q.schedule(SimTime::from_micros(r as u64 * spacing), id);
                expect.push(id);
            }
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, expect);
    }
}
