//! The rule catalogue.
//!
//! Each rule walks the token stream produced by [`crate::lexer`] and
//! emits [`Diagnostic`]s. Rules are purely syntactic — they know the
//! crate name and repo-relative path of the file under analysis and the
//! set of `abr-lint: allow(...)` annotations, nothing more.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | D001 | no `HashMap`/`HashSet` in result-path crates |
//! | D002 | no wall-clock / environment reads outside the allowlist |
//! | D003 | no unseeded randomness anywhere |
//! | P001 | `unwrap()`/`expect()` in library code stays within the ratcheted budget |
//! | C001 | no `as` narrowing casts in sector/cylinder arithmetic modules |
//! | L001 | annotations must be well-formed (known rule, non-empty reason) |
//!
//! The interprocedural rules (D004/D005, [`crate::taint`]) and the
//! metric schema cross-check (M001/M002, [`crate::schema`]) live in
//! their own modules — they need the whole workspace, not one file —
//! but their ids are registered here so annotations naming them parse.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose code runs on the simulated-result path: anything with
/// host-dependent iteration order here can leak into `results/*.json`.
pub const RESULT_PATH_CRATES: &[&str] = &[
    "abr-array",
    "abr-core",
    "abr-disk",
    "abr-driver",
    "abr-fs",
    "abr-workload",
];

/// Files allowed to read the wall clock: the bench engine's wall-time
/// reporting (never folded into simulated results) and the observability
/// timer abstraction.
pub const D002_ALLOWLIST: &[&str] = &[
    "crates/abr-bench/src/engine.rs",
    "crates/abr-obs/src/timer.rs",
];

/// File names whose arithmetic is sector/cylinder geometry: narrowing
/// `as` casts there have historically been where truncation bugs hide.
pub const C001_FILES: &[&str] = &["geometry.rs", "layout.rs", "cylmap.rs", "stripe.rs"];

/// Cast targets C001 treats as narrowing. `usize`/`u64`/`u128` are
/// widening (or identity) on every supported host and stay legal.
pub const C001_NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// All rule ids an annotation may name.
pub const KNOWN_RULES: &[&str] = &[
    "D001", "D002", "D003", "D004", "D005", "P001", "C001", "M001", "M002",
];

/// Everything the rules need to know about one file.
pub struct FileCtx<'a> {
    /// Crate the file belongs to (directory name under `crates/`).
    pub crate_name: &'a str,
    /// Repo-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Lexed source.
    pub lexed: &'a Lexed,
}

/// Result of linting one file: immediate diagnostics plus the P001
/// occurrence list (budget arithmetic happens at workspace level).
#[derive(Default)]
pub struct FileLint {
    /// D001/D002/D003/C001/L001 findings.
    pub diags: Vec<Diagnostic>,
    /// Lines of unannotated `unwrap()`/`expect()` calls in non-test
    /// code, if P001 applies to this file.
    pub p001_lines: Vec<u32>,
}

/// Per-line allow set derived from annotations, plus L001 findings for
/// malformed ones.
fn allow_map(
    ctx: &FileCtx<'_>,
    diags: &mut Vec<Diagnostic>,
) -> BTreeMap<u32, BTreeSet<&'static str>> {
    let mut allow: BTreeMap<u32, BTreeSet<&'static str>> = BTreeMap::new();
    for (applies_to, a) in ctx.lexed.annotation_lines() {
        let known = KNOWN_RULES.iter().find(|r| **r == a.rule);
        match known {
            None => diags.push(Diagnostic::new(
                "L001",
                ctx.rel_path,
                a.line,
                format!("annotation names unknown rule `{}`", a.rule),
            )),
            Some(rule) => {
                if a.reason.is_empty() {
                    diags.push(Diagnostic::new(
                        "L001",
                        ctx.rel_path,
                        a.line,
                        format!("allow({rule}) annotation is missing a reason"),
                    ));
                }
                allow.entry(applies_to).or_default().insert(rule);
            }
        }
    }
    allow
}

/// Run every rule over one lexed file.
pub fn lint_file(ctx: &FileCtx<'_>) -> FileLint {
    let mut out = FileLint::default();
    let allow = allow_map(ctx, &mut out.diags);
    let allowed =
        |line: u32, rule: &str| allow.get(&line).map(|s| s.contains(rule)).unwrap_or(false);
    let toks = &ctx.lexed.tokens;
    let in_test = &ctx.lexed.in_test;
    let is = |i: usize, kind: TokKind, s: &str| -> bool {
        toks.get(i)
            .map(|t: &Tok| t.kind == kind && t.text == s)
            .unwrap_or(false)
    };
    let path_sep = |i: usize| is(i, TokKind::Punct, ":") && is(i + 1, TokKind::Punct, ":");

    let d001_applies = RESULT_PATH_CRATES.contains(&ctx.crate_name);
    let d002_applies = !D002_ALLOWLIST.contains(&ctx.rel_path);
    let file_name = ctx.rel_path.rsplit('/').next().unwrap_or(ctx.rel_path);
    let c001_applies = C001_FILES.contains(&file_name);
    let p001_applies =
        !ctx.rel_path.contains("/src/bin/") && !ctx.rel_path.ends_with("/src/main.rs");

    for (i, t) in toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let line = t.line;
        if t.kind == TokKind::Ident {
            // D001 — randomized-iteration containers on the result path.
            if d001_applies
                && (t.text == "HashMap" || t.text == "HashSet")
                && !allowed(line, "D001")
            {
                out.diags.push(Diagnostic::new(
                    "D001",
                    ctx.rel_path,
                    line,
                    format!(
                        "`{}` has host-randomized iteration order; use BTreeMap/BTreeSet or sort at emit (or annotate why order cannot leak)",
                        t.text
                    ),
                ));
            }

            // D002 — wall clock / environment reads.
            if d002_applies {
                let hit = if t.text == "SystemTime" {
                    Some("SystemTime")
                } else if t.text == "Instant" && path_sep(i + 1) && is(i + 3, TokKind::Ident, "now")
                {
                    Some("Instant::now")
                } else if t.text == "env"
                    && path_sep(i + 1)
                    && (is(i + 3, TokKind::Ident, "var")
                        || is(i + 3, TokKind::Ident, "vars")
                        || is(i + 3, TokKind::Ident, "var_os"))
                {
                    Some("env::var")
                } else {
                    None
                };
                if let Some(what) = hit {
                    if !allowed(line, "D002") {
                        out.diags.push(Diagnostic::new(
                            "D002",
                            ctx.rel_path,
                            line,
                            format!(
                                "`{what}` outside the wall-clock allowlist; simulated results must not depend on host time or environment"
                            ),
                        ));
                    }
                }
            }

            // D003 — unseeded randomness, banned everywhere.
            let hit = if t.text == "thread_rng" || t.text == "OsRng" || t.text == "from_entropy" {
                Some(t.text.as_str())
            } else if t.text == "rand" && path_sep(i + 1) && is(i + 3, TokKind::Ident, "random") {
                Some("rand::random")
            } else {
                None
            };
            if let Some(what) = hit {
                if !allowed(line, "D003") {
                    out.diags.push(Diagnostic::new(
                        "D003",
                        ctx.rel_path,
                        line,
                        format!(
                            "`{what}` is unseeded randomness; derive a stream from SimRng instead"
                        ),
                    ));
                }
            }

            // C001 — narrowing `as` casts in geometry arithmetic.
            if c001_applies && t.text == "as" {
                if let Some(target) = toks.get(i + 1) {
                    if target.kind == TokKind::Ident
                        && C001_NARROW.contains(&target.text.as_str())
                        && !allowed(line, "C001")
                    {
                        out.diags.push(Diagnostic::new(
                            "C001",
                            ctx.rel_path,
                            line,
                            format!(
                                "narrowing `as {}` in sector/cylinder arithmetic; use a checked narrow (abr_sim::narrow) or TryFrom",
                                target.text
                            ),
                        ));
                    }
                }
            }

            // P001 — record unwrap()/expect() occurrences for budgeting.
            if p001_applies
                && (t.text == "unwrap" || t.text == "expect")
                && i > 0
                && is(i - 1, TokKind::Punct, ".")
                && is(i + 1, TokKind::Punct, "(")
                && !allowed(line, "P001")
            {
                out.p001_lines.push(line);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(crate_name: &str, rel_path: &str, src: &str) -> FileLint {
        let lexed = lex(src);
        lint_file(&FileCtx {
            crate_name,
            rel_path,
            lexed: &lexed,
        })
    }

    #[test]
    fn d001_fires_only_in_result_path_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            run("abr-core", "crates/abr-core/src/x.rs", src).diags.len(),
            1
        );
        assert!(run("abr-bench", "crates/abr-bench/src/x.rs", src)
            .diags
            .is_empty());
    }

    #[test]
    fn d001_respects_annotation_and_test_code() {
        let src = "use std::collections::HashMap; // abr-lint: allow(D001, keyed lookup only)\n\
                   #[cfg(test)]\nmod t { use std::collections::HashSet; }\n";
        let l = run("abr-driver", "crates/abr-driver/src/x.rs", src);
        assert!(l.diags.is_empty(), "{:?}", l.diags);
    }

    #[test]
    fn d002_matches_instant_now_but_not_instant_elapsed() {
        let bad = "let t = Instant::now();\n";
        let ok = "fn f(t: Instant) -> Duration { t.elapsed() }\n";
        assert_eq!(
            run("abr-core", "crates/abr-core/src/x.rs", bad).diags.len(),
            1
        );
        assert!(run("abr-core", "crates/abr-core/src/x.rs", ok)
            .diags
            .is_empty());
    }

    #[test]
    fn d002_allowlist_files_are_exempt() {
        let src = "let t = Instant::now(); let s = SystemTime::now();\n";
        assert!(run("abr-bench", "crates/abr-bench/src/engine.rs", src)
            .diags
            .is_empty());
        assert!(run("abr-obs", "crates/abr-obs/src/timer.rs", src)
            .diags
            .is_empty());
        assert_eq!(
            run("abr-obs", "crates/abr-obs/src/registry.rs", src)
                .diags
                .len(),
            2
        );
    }

    #[test]
    fn d002_env_reads() {
        let src = "let p = std::env::var(\"PATH\");\n";
        assert_eq!(
            run("abr-bench", "crates/abr-bench/src/runs.rs", src)
                .diags
                .len(),
            1
        );
        // env::consts is compile-time constant, not an environment read.
        let consts = "let os = std::env::consts::OS;\n";
        assert!(run("abr-bench", "crates/abr-bench/src/runs.rs", consts)
            .diags
            .is_empty());
    }

    #[test]
    fn d003_unseeded_randomness_everywhere() {
        let src = "let x = rand::random::<u64>(); let mut r = thread_rng();\n";
        let l = run("abr-bench", "crates/abr-bench/src/x.rs", src);
        assert_eq!(l.diags.len(), 2);
        assert!(l.diags.iter().all(|d| d.rule == "D003"));
    }

    #[test]
    fn p001_counts_unannotated_non_test_calls() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); }\n\
                   fn g() { c.unwrap(); } // abr-lint: allow(P001, infallible by construction)\n\
                   #[cfg(test)]\nmod t { fn h() { d.unwrap(); } }\n";
        let l = run("abr-core", "crates/abr-core/src/x.rs", src);
        assert_eq!(l.p001_lines, vec![1, 1]);
    }

    #[test]
    fn p001_skips_binaries() {
        let src = "fn main() { a.unwrap(); }\n";
        assert!(
            run("abr-bench", "crates/abr-bench/src/bin/experiments.rs", src)
                .p001_lines
                .is_empty()
        );
        assert!(run("abr-lint", "crates/abr-lint/src/main.rs", src)
            .p001_lines
            .is_empty());
    }

    #[test]
    fn c001_narrowing_only_in_geometry_files() {
        let src = "let a = x as u32; let b = x as u64; let c = x as usize;\n";
        let l = run("abr-disk", "crates/abr-disk/src/geometry.rs", src);
        assert_eq!(l.diags.len(), 1, "{:?}", l.diags);
        assert!(l.diags[0].message.contains("as u32"));
        assert!(run("abr-disk", "crates/abr-disk/src/store.rs", src)
            .diags
            .is_empty());
    }

    #[test]
    fn c001_use_renames_do_not_fire() {
        let src = "use crate::geometry::Geometry as u32geom;\n";
        assert!(run("abr-disk", "crates/abr-disk/src/geometry.rs", src)
            .diags
            .is_empty());
    }

    #[test]
    fn l001_flags_missing_reason_and_unknown_rule() {
        let src = "use std::collections::HashMap; // abr-lint: allow(D001)\n\
                   let x = 1; // abr-lint: allow(D999, whatever)\n";
        let l = run("abr-core", "crates/abr-core/src/x.rs", src);
        let rules: Vec<&str> = l.diags.iter().map(|d| d.rule.as_str()).collect();
        assert_eq!(rules, vec!["L001", "L001"]);
    }
}
