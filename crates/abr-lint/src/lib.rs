//! `abr-lint`: the workspace determinism & panic-safety analyzer.
//!
//! Two halves live here:
//!
//! * a **static analyzer** ([`lint_workspace`]) — a dependency-free
//!   Rust tokenizer ([`lexer`]) plus a small rule catalogue ([`rules`])
//!   enforcing the repo's determinism contracts (no randomized-order
//!   containers on the result path, no wall-clock reads outside the
//!   allowlist, no unseeded randomness, narrow-cast bans in geometry
//!   arithmetic) and a ratcheted `unwrap()`/`expect()` budget;
//! * a **runtime sanitizer** ([`sanitize`]) — invariant checks the
//!   product crates call behind their `sanitize` cargo feature
//!   (block-table bijection, stripe/cylinder permutations, monotone
//!   counters).
//!
//! See `DESIGN.md` §11 for the rule catalogue and annotation syntax.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod sanitize;

use rules::{lint_file, FileCtx};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Repo-relative path of the P001 budget file.
pub const BUDGET_PATH: &str = "crates/abr-lint/p001_budget.txt";

/// One finding, ordered for deterministic output.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D001`, ..., `L001`).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(rule: &str, file: &str, line: u32, message: String) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Outcome of a workspace lint.
pub struct LintReport {
    /// All findings, sorted by (file, line, rule, message).
    pub diags: Vec<Diagnostic>,
    /// Per-file unannotated `unwrap()`/`expect()` counts in non-test
    /// library code (the reality side of the P001 ratchet).
    pub p001_counts: BTreeMap<String, usize>,
}

impl LintReport {
    /// Render the sorted findings, one per line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for d in &self.diags {
            s.push_str(&d.to_string());
            s.push('\n');
        }
        s
    }

    /// Render the reality-side budget file content (sorted, one
    /// `path count` pair per line) for `--update-budget`.
    pub fn render_budget(&self) -> String {
        let mut s = String::from(
            "# P001 unwrap()/expect() debt per file — ratchet DOWN only.\n\
             # Regenerate with: cargo run -p abr-lint -- --workspace --update-budget\n",
        );
        for (file, n) in &self.p001_counts {
            if *n > 0 {
                s.push_str(&format!("{file} {n}\n"));
            }
        }
        s
    }
}

/// Parse the budget file into `path -> allowed count`. Unknown or
/// malformed lines become diagnostics rather than being ignored.
pub fn parse_budget(text: &str, diags: &mut Vec<Diagnostic>) -> BTreeMap<String, usize> {
    let mut budget = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let entry = (|| {
            let path = it.next()?;
            let n: usize = it.next()?.parse().ok()?;
            if it.next().is_some() {
                return None;
            }
            Some((path.to_string(), n))
        })();
        match entry {
            Some((path, n)) => {
                budget.insert(path, n);
            }
            None => diags.push(Diagnostic::new(
                "P001",
                BUDGET_PATH,
                (idx + 1) as u32,
                format!("malformed budget line `{line}`"),
            )),
        }
    }
    budget
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rs_files(&p, out);
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
}

/// Enumerate `(crate_name, rel_path, abs_path)` for every library
/// source file in the workspace: `crates/*/src/**/*.rs` plus the root
/// package's `src/`.
pub fn workspace_sources(root: &Path) -> Vec<(String, String, PathBuf)> {
    let mut out = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();
    // The root package `abr` participates too (its crate name is not on
    // the D001 result-path list, but D002/D003/P001 still apply).
    crate_dirs.push(root.to_path_buf());
    for dir in crate_dirs {
        let crate_name = if dir == *root {
            "abr".to_string()
        } else {
            dir.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        };
        let mut files = Vec::new();
        rs_files(&dir.join("src"), &mut files);
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((crate_name.clone(), rel, f));
        }
    }
    out
}

/// Lint every workspace source file against the full rule catalogue and
/// the P001 budget at `root/crates/abr-lint/p001_budget.txt`.
pub fn lint_workspace(root: &Path) -> LintReport {
    let mut diags = Vec::new();
    let mut p001_counts = BTreeMap::new();

    let mut p001_lines: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for (crate_name, rel_path, abs) in workspace_sources(root) {
        let Ok(source) = fs::read_to_string(&abs) else {
            diags.push(Diagnostic::new(
                "L001",
                &rel_path,
                0,
                "file is not valid UTF-8 or could not be read".to_string(),
            ));
            continue;
        };
        let lexed = lexer::lex(&source);
        let lint = lint_file(&FileCtx {
            crate_name: &crate_name,
            rel_path: &rel_path,
            lexed: &lexed,
        });
        diags.extend(lint.diags);
        if !lint.p001_lines.is_empty() {
            p001_counts.insert(rel_path.clone(), lint.p001_lines.len());
            p001_lines.insert(rel_path, lint.p001_lines);
        }
    }

    // P001 budget arithmetic: over budget -> diagnostics at the excess
    // call sites; under budget -> stale-budget diagnostic so debt only
    // ratchets down (the file must be regenerated to the lower count).
    let budget_text = fs::read_to_string(root.join(BUDGET_PATH)).unwrap_or_default();
    let budget = parse_budget(&budget_text, &mut diags);
    for (file, lines) in &p001_lines {
        let allowed = budget.get(file).copied().unwrap_or(0);
        if lines.len() > allowed {
            for line in &lines[allowed..] {
                diags.push(Diagnostic::new(
                    "P001",
                    file,
                    *line,
                    format!(
                        "unwrap()/expect() count {} exceeds budget {allowed}; handle the error or annotate allow(P001, reason)",
                        lines.len()
                    ),
                ));
            }
        } else if lines.len() < allowed {
            diags.push(Diagnostic::new(
                "P001",
                file,
                0,
                format!(
                    "budget {allowed} is stale (actual {}); ratchet down via --update-budget",
                    lines.len()
                ),
            ));
        }
    }
    for (file, allowed) in &budget {
        if *allowed > 0 && !p001_lines.contains_key(file) {
            diags.push(Diagnostic::new(
                "P001",
                file,
                0,
                format!("budget {allowed} is stale (actual 0); ratchet down via --update-budget"),
            ));
        }
    }

    diags.sort();
    diags.dedup();
    LintReport { diags, p001_counts }
}

/// Find the workspace root by walking up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
