//! `abr-lint`: the workspace determinism & panic-safety analyzer.
//!
//! Three halves live here:
//!
//! * a **static analyzer** ([`lint_workspace`]) — a dependency-free
//!   Rust tokenizer ([`lexer`]) plus a small rule catalogue ([`rules`])
//!   enforcing the repo's determinism contracts (no randomized-order
//!   containers on the result path, no wall-clock reads outside the
//!   allowlist, no unseeded randomness, narrow-cast bans in geometry
//!   arithmetic) and a ratcheted `unwrap()`/`expect()` budget;
//! * a **deep analyzer** — a workspace symbol table and call graph
//!   ([`graph`]) feeding an interprocedural determinism taint pass
//!   ([`taint`], rules D004/D005) and a metric/SLO schema cross-check
//!   ([`schema`], rules M001/M002), gated by a per-rule baseline
//!   ratchet (`crates/abr-lint/baselines.txt`);
//! * a **runtime sanitizer** ([`sanitize`]) — invariant checks the
//!   product crates call behind their `sanitize` cargo feature
//!   (block-table bijection, stripe/cylinder permutations, monotone
//!   counters).
//!
//! See `DESIGN.md` §11 for the rule catalogue and annotation syntax.

#![forbid(unsafe_code)]

pub mod graph;
pub mod lexer;
pub mod rules;
pub mod sanitize;
pub mod schema;
pub mod taint;

use graph::FileFns;
use rules::{lint_file, FileCtx};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Repo-relative path of the P001 budget file.
pub const BUDGET_PATH: &str = "crates/abr-lint/p001_budget.txt";

/// Repo-relative path of the deep-rule (D004/D005/M001/M002) baseline.
pub const BASELINE_PATH: &str = "crates/abr-lint/baselines.txt";

/// One finding, ordered for deterministic output.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D001`, ..., `L001`).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(rule: &str, file: &str, line: u32, message: String) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One parsed baseline entry: the frozen finding count plus the
/// justifying comment lines directly above it in the file.
#[derive(Debug, Clone, Default)]
pub struct BaselineEntry {
    /// Allowed finding count for this (rule, key).
    pub count: usize,
    /// `#`-comment lines attached to the entry (kept on rewrite).
    pub comments: Vec<String>,
}

/// The parsed deep-rule baseline file: `(rule, key) -> entry`.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries keyed by (rule id, baseline key).
    pub entries: BTreeMap<(String, String), BaselineEntry>,
}

/// Parse `baselines.txt`. Line format: `RULE KEY COUNT`, `#` comments
/// attach to the entry below them (a blank line detaches them — that is
/// how the file header stays a header). Malformed lines and unknown
/// rules become diagnostics rather than being ignored.
pub fn parse_baseline(text: &str, diags: &mut Vec<Diagnostic>) -> Baseline {
    let mut baseline = Baseline::default();
    let mut pending: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            pending.clear();
            continue;
        }
        if let Some(c) = line.strip_prefix('#') {
            pending.push(c.trim().to_string());
            continue;
        }
        let mut it = line.split_whitespace();
        let entry = (|| {
            let rule = it.next()?;
            let key = it.next()?;
            let n: usize = it.next()?.parse().ok()?;
            if it.next().is_some() {
                return None;
            }
            Some((rule.to_string(), key.to_string(), n))
        })();
        match entry {
            Some((rule, key, count)) => {
                if !rules::KNOWN_RULES.contains(&rule.as_str()) {
                    diags.push(Diagnostic::new(
                        "L001",
                        BASELINE_PATH,
                        (idx + 1) as u32,
                        format!("baseline names unknown rule `{rule}`"),
                    ));
                }
                baseline.entries.insert(
                    (rule, key),
                    BaselineEntry {
                        count,
                        comments: std::mem::take(&mut pending),
                    },
                );
            }
            None => diags.push(Diagnostic::new(
                "L001",
                BASELINE_PATH,
                (idx + 1) as u32,
                format!("malformed baseline line `{line}` (want `RULE KEY COUNT`)"),
            )),
        }
    }
    baseline
}

/// Outcome of a workspace lint.
pub struct LintReport {
    /// All findings, sorted by (file, line, rule, message).
    pub diags: Vec<Diagnostic>,
    /// Per-file unannotated `unwrap()`/`expect()` counts in non-test
    /// library code (the reality side of the P001 ratchet).
    pub p001_counts: BTreeMap<String, usize>,
    /// Reality side of the deep-rule ratchet: `(rule, key) -> count`
    /// of D004/D005/M001/M002 findings before baseline subtraction.
    pub deep_counts: BTreeMap<(String, String), usize>,
    /// The committed budget (allowed side), for regression refusal.
    pub old_budget: BTreeMap<String, usize>,
    /// The committed baseline (allowed side + comments), for
    /// regression refusal and comment-preserving rewrite.
    pub old_baseline: Baseline,
}

impl LintReport {
    /// Render the sorted findings, one per line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for d in &self.diags {
            s.push_str(&d.to_string());
            s.push('\n');
        }
        s
    }

    /// Render the reality-side budget file content (sorted, one
    /// `path count` pair per line) for `--write-budget`.
    pub fn render_budget(&self) -> String {
        let mut s = String::from(
            "# P001 unwrap()/expect() debt per file — ratchet DOWN only.\n\
             # Regenerate with: cargo run -p abr-lint -- --workspace --update-budget\n",
        );
        for (file, n) in &self.p001_counts {
            if *n > 0 {
                s.push_str(&format!("{file} {n}\n"));
            }
        }
        s
    }

    /// Render the reality-side baseline file for `--write-baseline`,
    /// preserving the justifying comments of surviving entries. Entries
    /// that never had one get a TODO placeholder (which the lint keeps
    /// flagging until a real justification replaces it).
    pub fn render_baseline(&self) -> String {
        let mut s = String::from(
            "# Deep-rule baselines (D004/D005/M001/M002) — ratchet DOWN only.\n\
             # Format: RULE KEY COUNT. The comment above each entry must say\n\
             # why it is allowed to stay; the lint flags entries without one.\n\
             # Regenerate (down only) with: experiments lint --write-baseline\n",
        );
        for ((rule, key), n) in &self.deep_counts {
            if *n == 0 {
                continue;
            }
            s.push('\n');
            let comments = self
                .old_baseline
                .entries
                .get(&(rule.clone(), key.clone()))
                .map(|e| e.comments.as_slice())
                .unwrap_or(&[]);
            if comments.is_empty() {
                s.push_str("# TODO: justify this baseline entry\n");
            } else {
                for c in comments {
                    s.push_str(&format!("# {c}\n"));
                }
            }
            s.push_str(&format!("{rule} {key} {n}\n"));
        }
        s
    }

    /// Files whose unwrap debt grew past the committed budget (the
    /// write-refusal check: ratchets only move down).
    pub fn budget_regressions(&self) -> Vec<String> {
        self.p001_counts
            .iter()
            .filter(|(file, n)| **n > self.old_budget.get(*file).copied().unwrap_or(0))
            .map(|(file, n)| {
                format!(
                    "{file}: {n} > budget {}",
                    self.old_budget.get(file).copied().unwrap_or(0)
                )
            })
            .collect()
    }

    /// Deep-rule entries whose finding count grew past the baseline.
    pub fn baseline_regressions(&self) -> Vec<String> {
        self.deep_counts
            .iter()
            .filter(|((rule, key), n)| {
                **n > self
                    .old_baseline
                    .entries
                    .get(&((*rule).clone(), (*key).clone()))
                    .map(|e| e.count)
                    .unwrap_or(0)
            })
            .map(|((rule, key), n)| {
                let allowed = self
                    .old_baseline
                    .entries
                    .get(&(rule.clone(), key.clone()))
                    .map(|e| e.count)
                    .unwrap_or(0);
                format!("{rule} {key}: {n} > baseline {allowed}")
            })
            .collect()
    }

    /// Machine-readable report: a deterministic JSON document (sorted
    /// diagnostics, sorted count maps) rendered with a hand-rolled
    /// emitter so `abr-lint` stays dependency-free. Byte-identical for
    /// identical findings regardless of `--jobs`.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"violations\": {},\n", self.diags.len()));
        s.push_str("  \"diagnostics\": [");
        for (i, d) in self.diags.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&d.file),
                d.line,
                json_str(&d.rule),
                json_str(&d.message)
            ));
        }
        s.push_str(if self.diags.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"p001\": {");
        let live: Vec<_> = self.p001_counts.iter().filter(|(_, n)| **n > 0).collect();
        for (i, (file, n)) in live.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    {}: {n}", json_str(file)));
        }
        s.push_str(if live.is_empty() { "},\n" } else { "\n  },\n" });
        s.push_str("  \"deep\": {");
        let deep: Vec<_> = self.deep_counts.iter().filter(|(_, n)| **n > 0).collect();
        for (i, ((rule, key), n)) in deep.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    {}: {n}", json_str(&format!("{rule} {key}"))));
        }
        s.push_str(if deep.is_empty() { "}\n" } else { "\n  }\n" });
        s.push_str("}\n");
        s
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse the budget file into `path -> allowed count`. Unknown or
/// malformed lines become diagnostics rather than being ignored.
pub fn parse_budget(text: &str, diags: &mut Vec<Diagnostic>) -> BTreeMap<String, usize> {
    let mut budget = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let entry = (|| {
            let path = it.next()?;
            let n: usize = it.next()?.parse().ok()?;
            if it.next().is_some() {
                return None;
            }
            Some((path.to_string(), n))
        })();
        match entry {
            Some((path, n)) => {
                budget.insert(path, n);
            }
            None => diags.push(Diagnostic::new(
                "P001",
                BUDGET_PATH,
                (idx + 1) as u32,
                format!("malformed budget line `{line}`"),
            )),
        }
    }
    budget
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rs_files(&p, out);
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
}

/// Enumerate `(crate_name, rel_path, abs_path)` for every library
/// source file in the workspace: `crates/*/src/**/*.rs` plus the root
/// package's `src/`.
pub fn workspace_sources(root: &Path) -> Vec<(String, String, PathBuf)> {
    let mut out = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();
    // The root package `abr` participates too (its crate name is not on
    // the D001 result-path list, but D002/D003/P001 still apply).
    crate_dirs.push(root.to_path_buf());
    for dir in crate_dirs {
        let crate_name = if dir == *root {
            "abr".to_string()
        } else {
            dir.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        };
        let mut files = Vec::new();
        rs_files(&dir.join("src"), &mut files);
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((crate_name.clone(), rel, f));
        }
    }
    out
}

/// One loaded and lexed workspace source file.
pub struct SourceFile {
    /// Crate the file belongs to (directory name under `crates/`).
    pub crate_name: String,
    /// Repo-relative path with forward slashes.
    pub rel_path: String,
    /// Lexed source (empty on read error).
    pub lexed: lexer::Lexed,
    /// The file could not be read as UTF-8.
    pub read_error: bool,
}

fn load_one(src: &(String, String, PathBuf)) -> SourceFile {
    let (crate_name, rel_path, abs) = src;
    match fs::read_to_string(abs) {
        Ok(text) => SourceFile {
            crate_name: crate_name.clone(),
            rel_path: rel_path.clone(),
            lexed: lexer::lex(&text),
            read_error: false,
        },
        Err(_) => SourceFile {
            crate_name: crate_name.clone(),
            rel_path: rel_path.clone(),
            lexed: lexer::Lexed::default(),
            read_error: true,
        },
    }
}

/// Read and lex every workspace source, on `jobs` threads. Results are
/// merged back in enumeration order, so the outcome (and everything
/// derived from it, including `--json` bytes) is identical for any
/// `jobs` value.
pub fn load_workspace(root: &Path, jobs: usize) -> Vec<SourceFile> {
    let sources = workspace_sources(root);
    let jobs = jobs.max(1).min(sources.len().max(1));
    if jobs == 1 {
        return sources.iter().map(load_one).collect();
    }
    let chunk = sources.len().div_ceil(jobs);
    let mut out: Vec<SourceFile> = Vec::with_capacity(sources.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = sources
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(load_one).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            // abr-lint: allow(P001, a panicked lexer worker leaves no sane report to emit)
            out.extend(h.join().expect("lint worker panicked"));
        }
    });
    out
}

/// Lint already-loaded sources against the full rule catalogue, the
/// P001 budget text, and the deep-rule baseline text. Pure: reads no
/// files, so tests can drive it with synthetic workspaces.
pub fn lint_sources(files: &[SourceFile], budget_text: &str, baseline_text: &str) -> LintReport {
    let mut diags = Vec::new();
    let mut p001_counts = BTreeMap::new();
    let mut p001_lines: BTreeMap<String, Vec<u32>> = BTreeMap::new();

    for f in files {
        if f.read_error {
            diags.push(Diagnostic::new(
                "L001",
                &f.rel_path,
                0,
                "file is not valid UTF-8 or could not be read".to_string(),
            ));
            continue;
        }
        let lint = lint_file(&FileCtx {
            crate_name: &f.crate_name,
            rel_path: &f.rel_path,
            lexed: &f.lexed,
        });
        diags.extend(lint.diags);
        if !lint.p001_lines.is_empty() {
            p001_counts.insert(f.rel_path.clone(), lint.p001_lines.len());
            p001_lines.insert(f.rel_path.clone(), lint.p001_lines);
        }
    }

    // P001 budget arithmetic: over budget -> diagnostics at the excess
    // call sites; under budget -> stale-budget diagnostic so debt only
    // ratchets down (the file must be regenerated to the lower count).
    let old_budget = parse_budget(budget_text, &mut diags);
    for (file, lines) in &p001_lines {
        let allowed = old_budget.get(file).copied().unwrap_or(0);
        if lines.len() > allowed {
            for line in &lines[allowed..] {
                diags.push(Diagnostic::new(
                    "P001",
                    file,
                    *line,
                    format!(
                        "unwrap()/expect() count {} exceeds budget {allowed}; handle the error or annotate allow(P001, reason)",
                        lines.len()
                    ),
                ));
            }
        } else if lines.len() < allowed {
            diags.push(Diagnostic::new(
                "P001",
                file,
                0,
                format!(
                    "budget {allowed} is stale (actual {}); ratchet down via --update-budget",
                    lines.len()
                ),
            ));
        }
    }
    for (file, allowed) in &old_budget {
        if *allowed > 0 && !p001_lines.contains_key(file) {
            diags.push(Diagnostic::new(
                "P001",
                file,
                0,
                format!("budget {allowed} is stale (actual 0); ratchet down via --update-budget"),
            ));
        }
    }

    // Deep pass: call graph -> taint, plus the metric schema check.
    let scans: Vec<FileFns> = files
        .iter()
        .enumerate()
        .map(|(i, f)| graph::scan_file(i, &f.lexed))
        .collect();
    let pairs: Vec<(&lexer::Lexed, &FileFns)> =
        files.iter().map(|f| &f.lexed).zip(scans.iter()).collect();
    let call_graph = graph::build_graph(&pairs);

    let taint_input: Vec<(String, &lexer::Lexed)> = files
        .iter()
        .map(|f| (f.rel_path.clone(), &f.lexed))
        .collect();
    let schema_input: Vec<(String, String, &lexer::Lexed)> = files
        .iter()
        .map(|f| (f.crate_name.clone(), f.rel_path.clone(), &f.lexed))
        .collect();

    let mut deep: BTreeMap<(String, String), Vec<Diagnostic>> = BTreeMap::new();
    for f in taint::analyze(&taint_input, &scans, &call_graph) {
        deep.entry((f.rule.to_string(), f.key()))
            .or_default()
            .push(f.diagnostic());
    }
    for f in schema::analyze(&schema_input) {
        deep.entry((f.rule.to_string(), f.key()))
            .or_default()
            .push(f.diagnostic());
    }

    // Baseline arithmetic: same ratchet shape as P001, but per
    // (rule, key) so each frozen exception is individually visible.
    let old_baseline = parse_baseline(baseline_text, &mut diags);
    let mut deep_counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for ((rule, key), found) in &deep {
        deep_counts.insert((rule.clone(), key.clone()), found.len());
        let entry = old_baseline.entries.get(&(rule.clone(), key.clone()));
        let allowed = entry.map(|e| e.count).unwrap_or(0);
        if found.len() > allowed {
            diags.extend(found[allowed..].iter().cloned());
        } else if found.len() < allowed {
            diags.push(Diagnostic::new(
                rule,
                BASELINE_PATH,
                0,
                format!(
                    "baseline `{rule} {key} {allowed}` is stale (actual {}); ratchet down via --write-baseline",
                    found.len()
                ),
            ));
        }
    }
    for ((rule, key), entry) in &old_baseline.entries {
        if entry.count > 0 && !deep.contains_key(&(rule.clone(), key.clone())) {
            diags.push(Diagnostic::new(
                rule,
                BASELINE_PATH,
                0,
                format!(
                    "baseline `{rule} {key} {}` is stale (actual 0); ratchet down via --write-baseline",
                    entry.count
                ),
            ));
        }
        // Frozen exceptions must each say why they stay.
        let justified = entry
            .comments
            .iter()
            .any(|c| !c.is_empty() && !c.contains("TODO"));
        if entry.count > 0 && !justified {
            diags.push(Diagnostic::new(
                "L001",
                BASELINE_PATH,
                0,
                format!("baseline entry `{rule} {key}` has no justifying comment"),
            ));
        }
    }

    diags.sort();
    diags.dedup();
    LintReport {
        diags,
        p001_counts,
        deep_counts,
        old_budget,
        old_baseline,
    }
}

/// Lint every workspace source file against the full rule catalogue,
/// the P001 budget, and the deep-rule baseline (single-threaded load).
pub fn lint_workspace(root: &Path) -> LintReport {
    lint_workspace_jobs(root, 1)
}

/// [`lint_workspace`] with `jobs` loader/lexer threads. The report —
/// including `--json` bytes — is identical for any `jobs` value.
pub fn lint_workspace_jobs(root: &Path, jobs: usize) -> LintReport {
    let files = load_workspace(root, jobs);
    let budget_text = fs::read_to_string(root.join(BUDGET_PATH)).unwrap_or_default();
    let baseline_text = fs::read_to_string(root.join(BASELINE_PATH)).unwrap_or_default();
    lint_sources(&files, &budget_text, &baseline_text)
}

/// Options for [`run_lint`]: one struct so the two CLIs (`abr-lint`,
/// `experiments lint`) stay in lockstep.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// Loader/lexer threads (0 or 1 = serial).
    pub jobs: usize,
    /// Rewrite the P001 budget to reality (refused on regressions).
    pub write_budget: bool,
    /// Rewrite the deep baseline to reality (refused on regressions).
    pub write_baseline: bool,
}

/// Lint the workspace and apply any requested ratchet writes. A write
/// is refused (Err) when findings *increased* — ratchets only move
/// down; new debt needs a fix, an annotation, or a hand-written
/// baseline entry with a justification. After a write the workspace is
/// re-linted so the returned report reflects the refreshed files.
pub fn run_lint(root: &Path, opts: &LintOptions) -> Result<LintReport, String> {
    let report = lint_workspace_jobs(root, opts.jobs);
    let mut rewritten = false;
    if opts.write_budget {
        let regressions = report.budget_regressions();
        if !regressions.is_empty() {
            return Err(format!(
                "refusing to write {BUDGET_PATH}: unwrap debt increased\n  {}",
                regressions.join("\n  ")
            ));
        }
        let path = root.join(BUDGET_PATH);
        fs::write(&path, report.render_budget())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        rewritten = true;
    }
    if opts.write_baseline {
        let regressions = report.baseline_regressions();
        if !regressions.is_empty() {
            return Err(format!(
                "refusing to write {BASELINE_PATH}: deep findings increased\n  {}",
                regressions.join("\n  ")
            ));
        }
        let path = root.join(BASELINE_PATH);
        fs::write(&path, report.render_baseline())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        rewritten = true;
    }
    if rewritten {
        return Ok(lint_workspace_jobs(root, opts.jobs));
    }
    Ok(report)
}

/// Find the workspace root by walking up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
