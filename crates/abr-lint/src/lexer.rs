//! A lightweight Rust tokenizer — just enough lexical structure to run
//! the repo's invariant rules, in the spirit of `abr_sim::json`'s
//! hand-rolled parser: no `syn`, no external dependencies.
//!
//! The lexer understands comments (line + nested block), string/char
//! literals (including raw strings with hashes and byte strings),
//! lifetimes, identifiers, numbers, and punctuation, and records the
//! 1-based line of every token. It also extracts `abr-lint:` annotation
//! comments and, in a second pass over the token stream, marks the
//! token ranges belonging to `#[cfg(test)]` items so rules can skip
//! test code.

/// Token classes the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// Char/number literal (contents not preserved verbatim).
    Lit,
    /// String literal (plain, raw, or byte). `text` holds the contents
    /// between the quotes, uncooked: escape sequences stay as written.
    /// The schema cross-checker reads metric names out of these.
    Str,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (one char for punctuation, the spelling for idents).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// An `// abr-lint: allow(RULE, reason)` annotation found in a comment.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The rule id inside `allow(...)`, e.g. `D001`.
    pub rule: String,
    /// The free-text reason after the comma (trimmed; may be empty —
    /// the lint reports empty reasons as malformed).
    pub reason: String,
    /// Whether the comment is the only thing on its line (then it
    /// applies to the *next* line; otherwise to its own line).
    pub own_line: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Tok>,
    /// `abr-lint:` annotations, in source order.
    pub annotations: Vec<Annotation>,
    /// `in_test[i]` — token `i` is inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl Lexed {
    /// The 1-based line each annotation *applies to*: its own line for a
    /// trailing comment, the following line for a comment on a line of
    /// its own.
    pub fn annotation_lines(&self) -> impl Iterator<Item = (u32, &Annotation)> {
        self.annotations
            .iter()
            .map(|a| (if a.own_line { a.line + 1 } else { a.line }, a))
    }
}

/// Tokenize `source`, extracting annotations and test-region marks.
pub fn lex(source: &str) -> Lexed {
    let b = source.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut tokens = Vec::new();
    let mut annotations = Vec::new();
    // Whether a token has already been emitted on the current line
    // (decides `Annotation::own_line`).
    let mut line_has_token = false;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                line_has_token = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                // Doc comments (`///`, `//!`) are documentation — an
                // annotation example quoted in them must not register
                // as a live annotation.
                let doc = text.starts_with("///") || text.starts_with("//!");
                if !doc {
                    if let Some(a) = parse_annotation(text, line, !line_has_token) {
                        annotations.push(a);
                    }
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = &source[start..i];
                let doc = text.starts_with("/**") || text.starts_with("/*!");
                if !doc {
                    if let Some(a) = parse_annotation(text, start_line, !line_has_token) {
                        annotations.push(a);
                    }
                }
            }
            b'"' => {
                let start_line = line;
                let content_start = i + 1;
                i = skip_string(b, i, &mut line);
                let content_end = if i > content_start && b[i - 1] == b'"' {
                    i - 1
                } else {
                    i // unterminated at EOF
                };
                tokens.push(Tok {
                    kind: TokKind::Str,
                    text: source[content_start..content_end].to_string(),
                    line: start_line,
                });
                line_has_token = true;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let start_line = line;
                let (next, content) = skip_raw_or_byte_string(source, b, i, &mut line);
                i = next;
                tokens.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line: start_line,
                });
                line_has_token = true;
            }
            b'\'' => {
                // Lifetime or char literal.
                let (next, tok) = lex_quote(source, b, i, line);
                i = next;
                tokens.push(tok);
                line_has_token = true;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' || d == b'.' {
                        // Avoid eating `..` range punctuation after an int.
                        if d == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                            break;
                        }
                        i += 1;
                    } else if (d == b'+' || d == b'-')
                        && matches!(b[i - 1], b'e' | b'E')
                        && b[start..i].iter().any(|x| x.is_ascii_digit())
                    {
                        i += 1; // exponent sign in a float literal
                    } else {
                        break;
                    }
                }
                tokens.push(Tok {
                    kind: TokKind::Lit,
                    text: source[start..i].to_string(),
                    line,
                });
                line_has_token = true;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // `r#ident` raw identifiers come out as ident `r` then
                // punct `#` then the ident — close enough for our rules.
                tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
                line_has_token = true;
            }
            c => {
                tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                line_has_token = true;
                i += 1;
            }
        }
    }

    let in_test = mark_test_regions(&tokens);
    Lexed {
        tokens,
        annotations,
        in_test,
    }
}

/// Whether `b[i..]` starts a raw string (`r"`, `r#"`), byte string
/// (`b"`), or raw byte string (`br"`, `br#"`). A bare `r#ident` is NOT a
/// string.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'\'' {
            return false; // byte char b'x' — handled via skip below? No:
                          // treat as not-a-string; the b lexes as ident
                          // and '...' as a char literal, which is fine.
        }
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    j < b.len() && b[j] == b'"' && j > i
}

/// Skip a plain `"..."` string starting at `b[i] == b'"'`; returns the
/// index after the closing quote and counts newlines into `line`.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut i = i + 1;
    while i < b.len() {
        match b[i] {
            // An escape at the last byte must not step past EOF.
            b'\\' => i = (i + 2).min(b.len()),
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw/byte string starting at `b[i]` (`r`, `b`, or `br` prefix).
/// Returns the index after the closing delimiter and the contents
/// between the quotes.
fn skip_raw_or_byte_string(source: &str, b: &[u8], i: usize, line: &mut u32) -> (usize, String) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == b'"');
    if !raw {
        // Byte string `b"..."`: ordinary escape rules.
        let content_start = j + 1;
        let end = skip_string(b, j, line);
        let content_end = if end > content_start && b[end - 1] == b'"' {
            end - 1
        } else {
            end
        };
        return (end, source[content_start..content_end].to_string());
    }
    j += 1;
    let content_start = j;
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
        } else if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0;
            while k < b.len() && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, source[content_start..j].to_string());
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j, source[content_start..j.min(b.len())].to_string())
}

/// Lex a `'`-introduced token: a char literal or a lifetime.
fn lex_quote(source: &str, b: &[u8], i: usize, line: u32) -> (usize, Tok) {
    let lit = |end: usize| {
        (
            end,
            Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line,
            },
        )
    };
    if i + 1 >= b.len() {
        return lit(i + 1);
    }
    match b[i + 1] {
        b'\\' => {
            // Escape: skip the escaped character (it may itself be a
            // quote, as in '\''), then scan to the closing quote.
            let mut j = i + 3;
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            lit(j + 1)
        }
        c if c.is_ascii_alphanumeric() || c == b'_' => {
            // `'a'` is a char literal; `'a` (no closing quote after the
            // ident) is a lifetime.
            let mut j = i + 2;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            if j < b.len() && b[j] == b'\'' {
                lit(j + 1)
            } else {
                (
                    j,
                    Tok {
                        kind: TokKind::Lifetime,
                        text: source[i + 1..j].to_string(),
                        line,
                    },
                )
            }
        }
        _ => {
            // `'('`, `' '`, ... : a one-char literal.
            let mut j = i + 2;
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            lit(j + 1)
        }
    }
}

/// Parse an `abr-lint: allow(RULE, reason)` annotation out of a comment.
fn parse_annotation(comment: &str, line: u32, own_line: bool) -> Option<Annotation> {
    let at = comment.find("abr-lint:")?;
    let rest = comment[at + "abr-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (inner.trim(), ""),
    };
    Some(Annotation {
        line,
        rule: rule.to_string(),
        reason: reason.to_string(),
        own_line,
    })
}

/// Mark tokens inside `#[cfg(test)]` items (the attribute itself, any
/// stacked attributes, and the item body through its matching `}` or
/// terminating `;`).
fn mark_test_regions(tokens: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = cfg_test_attr_end(tokens, i) {
            // Mark the attribute and everything through the end of the
            // item it gates.
            let mut j = after_attr;
            // Skip any further attributes stacked on the same item.
            while j < tokens.len() && tokens[j].text == "#" {
                j = skip_balanced(tokens, j + 1, "[", "]");
            }
            // Scan the item: through a matching `{...}` block (fn, mod,
            // impl) or a terminating `;` (use decl), whichever first.
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            for t in in_test.iter_mut().take(j).skip(i) {
                *t = true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    in_test
}

/// If tokens at `i` start a `#[cfg(... test ...)]` attribute, return the
/// index one past its closing `]`.
fn cfg_test_attr_end(tokens: &[Tok], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#" || tokens.get(i + 1)?.text != "[" {
        return None;
    }
    if tokens.get(i + 2)?.text != "cfg" || tokens.get(i + 3)?.text != "(" {
        return None;
    }
    let end = skip_balanced(tokens, i + 1, "[", "]");
    let has_test = tokens[i + 4..end.saturating_sub(1)]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "test");
    has_test.then_some(end)
}

/// Given `tokens[open_at]` == `open`, return the index one past the
/// matching `close`.
fn skip_balanced(tokens: &[Tok], open_at: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open_at;
    while j < tokens.len() {
        if tokens[j].text == open {
            depth += 1;
        } else if tokens[j].text == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" here"#;
            let c = 'H';
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|t| *t == "HashMap").count(), 1);
    }

    #[test]
    fn lines_are_tracked_through_multiline_strings() {
        let src = "let a = \"x\ny\nz\";\nlet target = 1;";
        let l = lex(src);
        let t = l.tokens.iter().find(|t| t.text == "target").unwrap();
        assert_eq!(t.line, 4);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Lit).count(),
            1
        );
    }

    #[test]
    fn annotations_parse_with_rule_and_reason() {
        let src = "use std::collections::HashMap; // abr-lint: allow(D001, keyed lookups only)\n";
        let l = lex(src);
        assert_eq!(l.annotations.len(), 1);
        let a = &l.annotations[0];
        assert_eq!(a.rule, "D001");
        assert_eq!(a.reason, "keyed lookups only");
        assert!(!a.own_line);
    }

    #[test]
    fn own_line_annotation_applies_to_next_line() {
        let src = "// abr-lint: allow(P001, trusted)\nx.unwrap();\n";
        let l = lex(src);
        let (applies, a) = l.annotation_lines().next().unwrap();
        assert!(a.own_line);
        assert_eq!(applies, 2);
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let l = lex(src);
        let unwraps: Vec<(usize, bool)> = l
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| (i, l.in_test[i]))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].1, "live unwrap must not be in-test");
        assert!(unwraps[1].1, "test unwrap must be in-test");
    }

    #[test]
    fn cfg_test_attr_with_stacked_attributes() {
        let src =
            "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { a.expect(\"x\") }\nfn live() {}\n";
        let l = lex(src);
        let expect_idx = l.tokens.iter().position(|t| t.text == "expect").unwrap();
        assert!(l.in_test[expect_idx]);
        let live_idx = l.tokens.iter().position(|t| t.text == "live").unwrap();
        assert!(!l.in_test[live_idx]);
    }

    #[test]
    fn cfg_all_test_is_marked() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() { q.unwrap() } }\nfn g() { r.unwrap() }\n";
        let l = lex(src);
        let flags: Vec<bool> = l
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| l.in_test[i])
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_swallow_source() {
        // '\'' once ended the literal at the escaped quote, leaving the
        // real closing quote to open a bogus literal that ate source to
        // the next apostrophe.
        let src = "let q = '\\''; let escape = '\\\\'; let nl = '\\n';\nlet target = after();\n";
        let l = lex(src);
        let t = l.tokens.iter().find(|t| t.text == "target").unwrap();
        assert_eq!(t.line, 2);
        assert!(l.tokens.iter().any(|t| t.text == "after"));
    }

    #[test]
    fn doc_comments_are_not_annotations() {
        let src = "/// Use `// abr-lint: allow(D001, why)` to escape.\n\
                   //! And `// abr-lint: allow(P001, why)` likewise.\n\
                   // abr-lint: allow(C001, a real one)\nx as u32;\n";
        let l = lex(src);
        assert_eq!(l.annotations.len(), 1);
        assert_eq!(l.annotations[0].rule, "C001");
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let l = lex("let x = 1_000u64 + 2.5e-3 + 0xFFusize; let r = 0..10;");
        // `..` must survive as punctuation (two dots).
        let dots = l.tokens.iter().filter(|t| t.text == ".").count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn byte_strings_are_literals() {
        let l = lex(r#"let b = b"SystemTime"; let c = br#
            "#);
        // The name must never surface as an identifier a rule would
        // match — only as string *contents*.
        assert!(l
            .tokens
            .iter()
            .all(|t| t.kind != TokKind::Ident || t.text != "SystemTime"));
    }

    #[test]
    fn string_contents_are_preserved() {
        let l = lex(r##"let a = "driver.service_us"; let b = r#"raw "metric" x"#;"##);
        let strs: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["driver.service_us", r#"raw "metric" x"#]);
    }

    #[test]
    fn raw_strings_with_hashes_close_on_exact_hash_count() {
        // `"#` inside an `r##"..."##` string must not terminate it, and
        // the extra `#` after a shorter close stays punctuation.
        let src = r###"let a = r##"has "# inside"##; let tail = r#"x"#; done"###;
        let l = lex(src);
        let strs: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec![r##"has "# inside"##, "x"]);
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "done"));
    }

    #[test]
    fn multiline_raw_string_tracks_lines_and_start() {
        let src = "let a = r#\"one\ntwo\nthree\"#;\nlet target = 1;";
        let l = lex(src);
        let s = l.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.line, 1, "string token carries its start line");
        let t = l.tokens.iter().find(|t| t.text == "target").unwrap();
        assert_eq!(t.line, 4);
    }

    #[test]
    fn multiline_plain_string_token_carries_start_line() {
        let l = lex("let a = \"x\ny\nz\";");
        let s = l.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.line, 1);
    }

    #[test]
    fn char_literal_vs_lifetime_disambiguation() {
        // Labeled loops, anonymous lifetimes, unicode escapes, and the
        // underscore char literal all on one pass.
        let src = "fn f<'_ignored>(x: &'_ str) { 'outer: loop { break 'outer; } \
                   let c = '\\u{1F600}'; let u = '_'; let z = 'z'; }";
        let l = lex(src);
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["_ignored", "_", "outer", "outer"]);
        let lits = l.tokens.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 3, "three char literals");
    }

    #[test]
    fn deeply_nested_block_comments_terminate() {
        let src = "/* a /* b /* c */ d */ e */ live(); /*/ not closed by that */ more();";
        let l = lex(src);
        let idents: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["live", "more"]);
    }

    #[test]
    fn unterminated_string_at_eof_does_not_panic() {
        let l = lex("let a = \"abc\\");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Str));
        let l = lex("let a = r##\"abc\"#");
        let s = l.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "abc\"#");
    }
}
