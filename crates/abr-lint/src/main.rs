//! CLI for the workspace analyzer: `cargo run -p abr-lint -- --workspace`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage error.

#![forbid(unsafe_code)]

use abr_lint::{find_root, lint_workspace, BUDGET_PATH};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
abr-lint: workspace determinism & panic-safety analyzer

USAGE:
    abr-lint [--workspace] [--root <dir>] [--update-budget] [--list-rules]

OPTIONS:
    --workspace        Lint the enclosing workspace (default; kept for
                       symmetry with cargo's flag)
    --root <dir>       Lint the workspace rooted at <dir> instead of
                       searching upward from the current directory
    --update-budget    Rewrite crates/abr-lint/p001_budget.txt to the
                       current unwrap()/expect() reality (ratchet down)
    --list-rules       Print the rule catalogue and exit
";

const RULES: &str = "\
D001  no HashMap/HashSet in result-path crates (abr-core, abr-driver,
      abr-disk, abr-array, abr-workload, abr-fs)
D002  no Instant::now / SystemTime / env reads outside the allowlist
      (abr-bench engine.rs, abr-obs timer.rs)
D003  no unseeded randomness (thread_rng, rand::random, OsRng,
      from_entropy) anywhere
P001  unwrap()/expect() in non-test library code must stay within the
      ratcheted per-file budget (crates/abr-lint/p001_budget.txt)
C001  no narrowing `as` casts (u8/u16/u32/i8/i16/i32) in geometry.rs,
      layout.rs, cylmap.rs, stripe.rs
L001  abr-lint annotations must name a known rule and give a reason

Escape hatch: `// abr-lint: allow(RULE, reason)` — trailing on the
offending line, or alone on the line above it.
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut update_budget = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => {}
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--update-budget" => update_budget = true,
            "--list-rules" => {
                print!("{RULES}");
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("abr-lint: could not find a workspace root (Cargo.toml + crates/)");
            return ExitCode::from(2);
        }
    };

    let report = lint_workspace(&root);

    if update_budget {
        let path = root.join(BUDGET_PATH);
        if let Err(e) = std::fs::write(&path, report.render_budget()) {
            eprintln!("abr-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("abr-lint: wrote {}", path.display());
        // Re-lint so the exit code reflects the refreshed budget.
        let report = lint_workspace(&root);
        return finish(&report);
    }
    finish(&report)
}

fn finish(report: &abr_lint::LintReport) -> ExitCode {
    print!("{}", report.render());
    if report.diags.is_empty() {
        println!("abr-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("abr-lint: {} violation(s)", report.diags.len());
        ExitCode::FAILURE
    }
}
