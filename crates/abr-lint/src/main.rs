//! CLI for the workspace analyzer: `cargo run -p abr-lint -- --workspace`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage error.

#![forbid(unsafe_code)]

use abr_lint::{find_root, run_lint, LintOptions};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
abr-lint: workspace determinism & panic-safety analyzer

USAGE:
    abr-lint [--workspace] [--root <dir>] [--jobs N] [--json]
             [--write-budget] [--write-baseline] [--list-rules]

OPTIONS:
    --workspace        Lint the enclosing workspace (default; kept for
                       symmetry with cargo's flag)
    --root <dir>       Lint the workspace rooted at <dir> instead of
                       searching upward from the current directory
    --jobs N           Load and lex sources on N threads (output is
                       byte-identical for any N)
    --json             Emit the machine-readable JSON report instead of
                       one-line-per-finding text
    --write-budget     Rewrite crates/abr-lint/p001_budget.txt to the
                       current unwrap()/expect() reality; refused if
                       debt increased (--update-budget is an alias)
    --write-baseline   Rewrite crates/abr-lint/baselines.txt to the
                       current D004/D005/M001/M002 reality; refused if
                       findings increased
    --list-rules       Print the rule catalogue and exit
";

const RULES: &str = "\
D001  no HashMap/HashSet in result-path crates (abr-core, abr-driver,
      abr-disk, abr-array, abr-workload, abr-fs)
D002  no Instant::now / SystemTime / env reads outside the allowlist
      (abr-bench engine.rs, abr-obs timer.rs)
D003  no unseeded randomness (thread_rng, rand::random, OsRng,
      from_entropy) anywhere
D004  interprocedural: no wall-clock/env/FS-order/thread-id sink
      reachable from a result-path entry point (Campaign::run,
      RunBatch::execute, the array/fault/serve harnesses) through the
      workspace call graph
D005  interprocedural: no HashMap/HashSet/RandomState or unseeded-rng
      sink reachable from a result-path entry point
P001  unwrap()/expect() in non-test library code must stay within the
      ratcheted per-file budget (crates/abr-lint/p001_budget.txt)
C001  no narrowing `as` casts (u8/u16/u32/i8/i16/i32) in geometry.rs,
      layout.rs, cylmap.rs, stripe.rs
M001  every registered metric name (counter/gauge/histogram/hires in a
      producer crate) must have a consumer: a report column, an SLO,
      or the bench-compare allowlist
M002  every consumed metric name must be registered by a producer
L001  abr-lint annotations must name a known rule and give a reason;
      baseline entries must carry a justifying comment

Escape hatch: `// abr-lint: allow(RULE, reason)` — trailing on the
offending line, or alone on the line above it. For D004/D005 an allow
on a *call-site* line cuts taint propagation through that edge; an
allow on the sink line (D002/D003/D001 ids work there too) suppresses
the seed. Surviving findings go in crates/abr-lint/baselines.txt as
`RULE KEY COUNT` with a justifying comment, and only ratchet down.
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut opts = LintOptions::default();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => {}
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--jobs" | "-j" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--write-budget" | "--update-budget" => opts.write_budget = true,
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => {
                print!("{RULES}");
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("abr-lint: could not find a workspace root (Cargo.toml + crates/)");
            return ExitCode::from(2);
        }
    };

    let report = match run_lint(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("abr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render());
    }
    if report.diags.is_empty() {
        if !json {
            println!("abr-lint: clean");
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            println!("abr-lint: {} violation(s)", report.diags.len());
        }
        ExitCode::FAILURE
    }
}
