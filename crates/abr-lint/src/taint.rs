//! Interprocedural determinism taint analysis (rules D004/D005).
//!
//! The token-local rules D001–D003 catch a wall-clock read or a
//! `HashMap` at the line it is written, but not one laundered through a
//! helper: `fn stamp() -> u64 { now_us() }` called from the result path
//! is invisible to them. This pass closes that hole:
//!
//! 1. **Seed** taint at sink tokens inside function bodies —
//!    * D004 (wall clock / host environment): `SystemTime::now`,
//!      `Instant::now`, `std::env::{var,vars,var_os}`, `read_dir`
//!      (directory iteration order is host-dependent),
//!      `thread::current` (thread ids vary run to run);
//!    * D005 (unordered iteration / unseeded randomness): `HashMap`,
//!      `HashSet`, `RandomState`, `thread_rng`, `OsRng`, `from_entropy`,
//!      `rand::random`.
//! 2. **Propagate** along the workspace call graph ([`crate::graph`]),
//!    from the result-path entry points ([`ENTRY_POINTS`]) down the
//!    call edges.
//! 3. **Report** every sink whose function is reachable from an entry
//!    point, with the full call chain in the message.
//!
//! Annotations cut the analysis at two places, both honored per rule:
//! an `abr-lint: allow(...)` on the sink line suppresses the seed (the
//! D002/D003 ids are accepted there too, so existing annotations keep
//! working; D001 likewise covers D005's container seeds), and an
//! `allow(D004)`/`allow(D005)` on a *call site* line cuts propagation
//! through that edge — annotate one call, not every transitive caller.
//! Files on the D002 wall-clock allowlist seed no D004 taint at all.

use crate::graph::{CallGraph, FileFns};
use crate::lexer::{Lexed, TokKind};
use crate::rules::D002_ALLOWLIST;
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// Result-path entry points: `(impl type, method name)`. Everything
/// reachable from these must be deterministic — their output lands in
/// `results/*.json` or the byte-compared bench/serve records.
pub const ENTRY_POINTS: &[(Option<&str>, &str)] = &[
    (Some("Campaign"), "run"),
    (Some("RunBatch"), "execute"),
    (None, "run_ablation"),
    (None, "run_faults"),
    (None, "run_array"),
    (None, "run_serve"),
    (Some("Server"), "run"),
    (Some("Server"), "run_epoch"),
];

/// One taint finding: a sink inside a function reachable from the
/// result path.
#[derive(Debug, Clone)]
pub struct TaintFinding {
    /// `D004` or `D005`.
    pub rule: &'static str,
    /// Repo-relative path of the file holding the sink.
    pub file: String,
    /// 1-based line of the sink token.
    pub line: u32,
    /// Qualified name of the function containing the sink.
    pub qualname: String,
    /// What was found (`Instant::now`, `HashMap`, ...).
    pub sink: String,
    /// Call chain from an entry point to the sink's function.
    pub chain: Vec<String>,
}

impl TaintFinding {
    /// Stable baseline key: `{file}:{qualname}:{sink}` — line numbers
    /// deliberately excluded so unrelated edits don't churn baselines.
    pub fn key(&self) -> String {
        format!("{}:{}:{}", self.file, self.qualname, self.sink)
    }

    /// Render as a [`Diagnostic`].
    pub fn diagnostic(&self) -> Diagnostic {
        let what = match self.rule {
            "D004" => "reads the wall clock / host environment",
            _ => "uses host-randomized iteration or unseeded randomness",
        };
        Diagnostic::new(
            self.rule,
            &self.file,
            self.line,
            format!(
                "`{}` in `{}` {what}; reachable from the result path via {}",
                self.sink,
                self.qualname,
                self.chain.join(" -> "),
            ),
        )
    }
}

/// A sink occurrence before reachability filtering.
struct Seed {
    rule: &'static str,
    fn_gid: usize,
    sink: String,
    line: u32,
}

/// Per-line allowed rules for one file (L001 validation happens in
/// [`crate::rules::lint_file`]; unknown rules are simply inert here).
fn allow_lines(lexed: &Lexed) -> BTreeMap<u32, BTreeSet<String>> {
    let mut allow: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for (applies_to, a) in lexed.annotation_lines() {
        allow.entry(applies_to).or_default().insert(a.rule.clone());
    }
    allow
}

/// Run the analysis. `files` holds `(rel_path, lexed)` per file,
/// aligned with `scans` and with the graph's `FnDef::file` indices.
pub fn analyze(
    files: &[(String, &Lexed)],
    scans: &[FileFns],
    graph: &CallGraph,
) -> Vec<TaintFinding> {
    let allows: Vec<BTreeMap<u32, BTreeSet<String>>> =
        files.iter().map(|(_, l)| allow_lines(l)).collect();

    let seeds = collect_seeds(files, scans, &allows);

    let mut findings = Vec::new();
    for rule in ["D004", "D005"] {
        let parents = reach(graph, files, &allows, rule);
        for s in seeds.iter().filter(|s| s.rule == rule) {
            let Some(chain) = chain_to(graph, &parents, s.fn_gid) else {
                continue;
            };
            let f = &graph.fns[s.fn_gid];
            findings.push(TaintFinding {
                rule,
                file: files[f.file].0.clone(),
                line: s.line,
                qualname: f.qualified(),
                sink: s.sink.clone(),
                chain,
            });
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.sink).cmp(&(&b.file, b.line, b.rule, &b.sink))
    });
    findings
}

/// Find sink tokens inside (non-test) function bodies.
fn collect_seeds(
    files: &[(String, &Lexed)],
    scans: &[FileFns],
    allows: &[BTreeMap<u32, BTreeSet<String>>],
) -> Vec<Seed> {
    let mut seeds = Vec::new();
    // fn_gid base per file (scan order matches graph construction).
    let mut base = Vec::with_capacity(scans.len());
    let mut acc = 0usize;
    for s in scans {
        base.push(acc);
        acc += s.fns.len();
    }

    for (fi, (rel_path, lexed)) in files.iter().enumerate() {
        let d004_file = !D002_ALLOWLIST.contains(&rel_path.as_str());
        let toks = &lexed.tokens;
        let allowed = |line: u32, rules: &[&str]| {
            allows[fi]
                .get(&line)
                .map(|s| rules.iter().any(|r| s.contains(*r)))
                .unwrap_or(false)
        };
        let is = |i: usize, s: &str| toks.get(i).map(|t| t.text == s).unwrap_or(false);
        let path_sep = |i: usize| is(i, ":") && is(i + 1, ":");

        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            // Only tokens owned by a function body can execute; a sink
            // name in a type alias or use declaration is inert.
            let Some(local_fid) = scans[fi].owner[i] else {
                continue;
            };
            if lexed.in_test.get(i).copied().unwrap_or(false) || scans[fi].fns[local_fid].in_test {
                continue;
            }
            let fn_gid = base[fi] + local_fid;
            let line = t.line;

            // D004 — wall clock / host environment.
            if d004_file {
                let hit = if t.text == "SystemTime" && path_sep(i + 1) && is(i + 3, "now") {
                    Some("SystemTime::now")
                } else if t.text == "Instant" && path_sep(i + 1) && is(i + 3, "now") {
                    Some("Instant::now")
                } else if t.text == "env"
                    && path_sep(i + 1)
                    && (is(i + 3, "var") || is(i + 3, "vars") || is(i + 3, "var_os"))
                {
                    Some("env::var")
                } else if t.text == "read_dir" {
                    Some("read_dir")
                } else if t.text == "thread" && path_sep(i + 1) && is(i + 3, "current") {
                    Some("thread::current")
                } else {
                    None
                };
                if let Some(sink) = hit {
                    if !allowed(line, &["D002", "D004"]) {
                        seeds.push(Seed {
                            rule: "D004",
                            fn_gid,
                            sink: sink.to_string(),
                            line,
                        });
                    }
                }
            }

            // D005 — unordered iteration / unseeded randomness.
            let hit = match t.text.as_str() {
                "HashMap" | "HashSet" | "RandomState" => Some(t.text.as_str()),
                "thread_rng" | "OsRng" | "from_entropy" => Some(t.text.as_str()),
                "rand" if path_sep(i + 1) && is(i + 3, "random") => Some("rand::random"),
                _ => None,
            };
            if let Some(sink) = hit {
                if !allowed(line, &["D001", "D003", "D005"]) {
                    seeds.push(Seed {
                        rule: "D005",
                        fn_gid,
                        sink: sink.to_string(),
                        line,
                    });
                }
            }
        }
    }
    seeds
}

/// BFS from the entry points over call edges, honoring per-rule edge
/// cuts (an `allow(rule)` on the call-site line). Returns
/// `parents[gid] = Some(caller gid)` for reached functions (entry
/// points map to themselves).
fn reach(
    graph: &CallGraph,
    files: &[(String, &Lexed)],
    allows: &[BTreeMap<u32, BTreeSet<String>>],
    rule: &str,
) -> Vec<Option<usize>> {
    // Adjacency from the sorted edge list → deterministic visit order.
    let mut adj: BTreeMap<usize, Vec<(usize, u32)>> = BTreeMap::new();
    for e in &graph.edges {
        adj.entry(e.caller).or_default().push((e.callee, e.line));
    }

    let mut parents: Vec<Option<usize>> = vec![None; graph.fns.len()];
    let mut queue: Vec<usize> = Vec::new();
    for (ty, name) in ENTRY_POINTS {
        for gid in graph.find(*ty, name) {
            if parents[gid].is_none() {
                parents[gid] = Some(gid);
                queue.push(gid);
            }
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let gid = queue[head];
        head += 1;
        let caller_file = graph.fns[gid].file;
        for &(callee, line) in adj.get(&gid).map(Vec::as_slice).unwrap_or(&[]) {
            if parents[callee].is_some() {
                continue;
            }
            // An allow on the call-site line cuts this edge.
            let cut = allows[caller_file]
                .get(&line)
                .map(|s| s.contains(rule))
                .unwrap_or(false);
            if cut {
                continue;
            }
            parents[callee] = Some(gid);
            queue.push(callee);
        }
    }
    let _ = files;
    parents
}

/// Reconstruct the entry-point chain for a reached function.
fn chain_to(graph: &CallGraph, parents: &[Option<usize>], gid: usize) -> Option<Vec<String>> {
    parents[gid]?;
    let mut chain = Vec::new();
    let mut cur = gid;
    loop {
        chain.push(graph.fns[cur].qualified());
        // abr-lint: allow(P001, guarded by the parents[gid]? above; reached fns always have a parent)
        let p = parents[cur].expect("reached fn has a parent");
        if p == cur {
            break;
        }
        cur = p;
        // The parent array is a forest rooted at entry points, so this
        // terminates; cap anyway against future bugs.
        if chain.len() > graph.fns.len() {
            return None;
        }
    }
    chain.reverse();
    Some(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build_graph, scan_file};
    use crate::lexer::lex;

    fn run(sources: &[(&str, &str)]) -> Vec<TaintFinding> {
        let lexed: Vec<_> = sources.iter().map(|(_, s)| lex(s)).collect();
        let scans: Vec<FileFns> = lexed
            .iter()
            .enumerate()
            .map(|(i, l)| scan_file(i, l))
            .collect();
        let pairs: Vec<(&crate::lexer::Lexed, &FileFns)> = lexed.iter().zip(scans.iter()).collect();
        let graph = build_graph(&pairs);
        let files: Vec<(String, &crate::lexer::Lexed)> = sources
            .iter()
            .zip(lexed.iter())
            .map(|((p, _), l)| (p.to_string(), l))
            .collect();
        analyze(&files, &scans, &graph)
    }

    #[test]
    fn two_hop_wall_clock_leak_is_found() {
        let src = "struct Campaign;\n\
                   impl Campaign { pub fn run(&self) { helper(); } }\n\
                   fn helper() { stamp(); }\n\
                   fn stamp() -> u64 { Instant::now().elapsed().as_micros() as u64 }\n";
        let f = run(&[("crates/abr-bench/src/runs.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D004");
        assert_eq!(f[0].qualname, "stamp");
        assert_eq!(f[0].chain, vec!["Campaign::run", "helper", "stamp"]);
        assert_eq!(
            f[0].key(),
            "crates/abr-bench/src/runs.rs:stamp:Instant::now"
        );
    }

    #[test]
    fn unreachable_sinks_are_silent() {
        let src = "fn orphan() { let t = Instant::now(); }\n";
        assert!(run(&[("crates/abr-core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn sink_line_allow_suppresses_the_seed() {
        let src = "struct Campaign;\n\
                   impl Campaign { pub fn run(&self) { stamp(); } }\n\
                   // abr-lint: allow(D004, wall profiling only, never in results)\n\
                   fn stamp() {\n\
                       let t = Instant::now();\n\
                   }\n";
        // The annotation covers the `fn` line, not the sink line inside.
        assert_eq!(run(&[("crates/abr-core/src/x.rs", src)]).len(), 1);
        let src2 = "struct Campaign;\n\
                    impl Campaign { pub fn run(&self) { stamp(); } }\n\
                    fn stamp() {\n\
                        // abr-lint: allow(D004, wall profiling only, never in results)\n\
                        let t = Instant::now();\n\
                    }\n";
        assert!(run(&[("crates/abr-core/src/x.rs", src2)]).is_empty());
    }

    #[test]
    fn call_edge_allow_cuts_propagation() {
        let src = "struct Campaign;\n\
                   impl Campaign {\n\
                       pub fn run(&self) {\n\
                           stamp(); // abr-lint: allow(D004, wall time reported, not folded into results)\n\
                       }\n\
                   }\n\
                   fn stamp() { let t = Instant::now(); }\n";
        assert!(run(&[("crates/abr-core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn d002_allowlist_files_seed_no_d004() {
        let src = "struct RunBatch;\n\
                   impl RunBatch { pub fn execute(&self) { let t = Instant::now(); } }\n";
        assert!(run(&[("crates/abr-bench/src/engine.rs", src)]).is_empty());
        assert_eq!(run(&[("crates/abr-bench/src/other.rs", src)]).len(), 1);
    }

    #[test]
    fn d005_hashmap_in_reachable_fn_body() {
        let src = "fn run_ablation() { build(); }\n\
                   fn build() { let m = HashMap::new(); }\n";
        let f = run(&[("crates/abr-bench/src/ablations.rs", src)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D005");
        assert_eq!(f[0].sink, "HashMap");
    }

    #[test]
    fn type_alias_hashmap_does_not_seed() {
        let src = "type Cache = HashMap<u64, u64>;\n\
                   fn run_ablation() { let c: Cache = Default::default(); }\n";
        assert!(run(&[("crates/abr-bench/src/ablations.rs", src)]).is_empty());
    }

    #[test]
    fn existing_d001_annotation_covers_d005_seed() {
        let src = "fn run_array() { let m = HashMap::new(); } // abr-lint: allow(D001, keyed lookups only)\n";
        assert!(run(&[("crates/abr-bench/src/arrays.rs", src)]).is_empty());
    }

    #[test]
    fn cross_file_taint_propagates() {
        let a = "struct Server;\nimpl Server { pub fn run(&self) { util_stamp(); } }\n";
        let b = "pub fn util_stamp() { let d = read_dir(\".\"); }\n";
        let f = run(&[
            ("crates/abr-serve/src/server.rs", a),
            ("crates/abr-serve/src/util.rs", b),
        ]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].sink, "read_dir");
        assert_eq!(f[0].file, "crates/abr-serve/src/util.rs");
        assert_eq!(f[0].chain, vec!["Server::run", "util_stamp"]);
    }
}
