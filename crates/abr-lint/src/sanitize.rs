//! Runtime invariant checks for the `sanitize` build feature.
//!
//! The static rules in [`crate::rules`] catch *sources* of
//! nondeterminism; these helpers catch *consequences* — a block table
//! that stops being a bijection, a stripe/cylinder map that stops being
//! a permutation, a counter that runs backwards. Product crates
//! (`abr-driver`, `abr-core`, `abr-array`, `abr-obs`) depend on this
//! module only when built with `--features sanitize` and call these
//! helpers from `debug`-style assertion points on the rearrangement
//! path.
//!
//! Every helper returns `Err(description)` instead of panicking so call
//! sites can choose between `assert!`-style aborts (the default wiring)
//! and soft reporting in tests.

/// Check that `values` is a permutation of `0..n` (every value hit
/// exactly once).
pub fn check_permutation(values: impl IntoIterator<Item = u64>, n: u64) -> Result<(), String> {
    let mut seen = vec![false; usize::try_from(n).map_err(|_| "domain too large".to_string())?];
    let mut count: u64 = 0;
    for v in values {
        if v >= n {
            return Err(format!("value {v} outside domain 0..{n}"));
        }
        let slot = &mut seen[v as usize];
        if *slot {
            return Err(format!("value {v} appears more than once"));
        }
        *slot = true;
        count += 1;
    }
    if count != n {
        return Err(format!("{count} values for a domain of {n}"));
    }
    Ok(())
}

/// Check that `forward` and `backward` describe mutually inverse maps:
/// every `(k, v)` in `forward` has `(v, k)` in `backward` and vice
/// versa. Pairs may arrive in any order.
pub fn check_bijection(
    forward: impl IntoIterator<Item = (u64, u64)>,
    backward: impl IntoIterator<Item = (u64, u64)>,
) -> Result<(), String> {
    let mut fwd: Vec<(u64, u64)> = forward.into_iter().collect();
    let mut inv: Vec<(u64, u64)> = backward.into_iter().map(|(k, v)| (v, k)).collect();
    fwd.sort_unstable();
    inv.sort_unstable();
    for w in fwd.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(format!("forward map has duplicate key {}", w[0].0));
        }
    }
    let mut vals: Vec<u64> = fwd.iter().map(|&(_, v)| v).collect();
    vals.sort_unstable();
    for w in vals.windows(2) {
        if w[0] == w[1] {
            return Err(format!("forward map sends two keys to value {}", w[0]));
        }
    }
    if fwd != inv {
        let n = fwd.len();
        let m = inv.len();
        if n != m {
            return Err(format!("forward has {n} entries but backward has {m}"));
        }
        for (f, b) in fwd.iter().zip(inv.iter()) {
            if f != b {
                return Err(format!(
                    "forward says {} -> {} but backward disagrees ({} -> {})",
                    f.0, f.1, b.0, b.1
                ));
            }
        }
    }
    Ok(())
}

/// Check that a counter named `name` did not decrease between two
/// snapshots.
pub fn check_monotone(name: &str, prev: u64, cur: u64) -> Result<(), String> {
    if cur < prev {
        return Err(format!("counter `{name}` ran backwards: {prev} -> {cur}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_accepts_identity_and_shuffles() {
        assert!(check_permutation(0..10, 10).is_ok());
        assert!(check_permutation([3, 1, 0, 2].into_iter(), 4).is_ok());
    }

    #[test]
    fn permutation_rejects_duplicates_holes_and_overflow() {
        assert!(check_permutation([0, 0, 1].into_iter(), 3).is_err());
        assert!(check_permutation([0, 1].into_iter(), 3).is_err());
        assert!(check_permutation([0, 1, 5].into_iter(), 3).is_err());
    }

    #[test]
    fn bijection_accepts_mutual_inverses_any_order() {
        let fwd = [(10u64, 1u64), (20, 0), (30, 2)];
        let bwd = [(0u64, 20u64), (2, 30), (1, 10)];
        assert!(check_bijection(fwd, bwd).is_ok());
    }

    #[test]
    fn bijection_rejects_dangling_and_conflicting_entries() {
        // backward missing an entry
        assert!(check_bijection([(10, 1), (20, 2)], [(1u64, 10u64)]).is_err());
        // backward points at the wrong key
        assert!(check_bijection([(10, 1)], [(1u64, 99u64)]).is_err());
        // two keys share a value
        assert!(check_bijection([(10, 1), (20, 1)], [(1u64, 10u64), (1, 20)]).is_err());
    }

    #[test]
    fn monotone_rejects_regressions() {
        assert!(check_monotone("ops", 5, 5).is_ok());
        assert!(check_monotone("ops", 5, 6).is_ok());
        assert!(check_monotone("ops", 6, 5).is_err());
    }
}
