//! Metric & SLO schema cross-checker (rules M001/M002).
//!
//! The metrics registry is stringly-typed: producers register
//! `r.counter("driver.submitted")` in one crate, consumers read
//! `snap["counters"]["driver.submitted"]` (or name a metric in an SLO
//! spec / report column / bench-compare allowlist) in another. Nothing
//! in the type system connects the two, so a typo'd or orphaned name
//! silently yields zeros. This pass closes the loop:
//!
//! * **Registrations** — every string literal passed to a
//!   `counter`/`gauge`/`histogram`/`hires` call in a *producer* crate
//!   (everything except `abr-bench`, which only reads snapshots, and
//!   `abr-lint` itself).
//! * **Consumptions** — every metric-shaped string literal in
//!   `abr-bench` live code (snapshot lookups, report columns, the
//!   bench-compare p99 allowlist), plus every metric named inside a
//!   `pNN(...)` SLO expression anywhere.
//!
//! **M001 (dead)**: registered, never consumed — nothing would notice
//! if the instrumented code stopped counting. **M002 (phantom)**:
//! consumed, never registered — the consumer reads eternal zeros.
//!
//! The `wall.*` namespace is exempt: those names are formatted at
//! runtime by the profiling timer and harvested wholesale, so neither
//! side has a literal to match. A string whose last dot-segment looks
//! like a file extension (`counts.json`) is not a metric name.

use crate::lexer::{Lexed, TokKind};
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// Registry calls whose first string argument registers a metric name.
const REGISTER_FNS: &[&str] = &["counter", "gauge", "histogram", "hires"];

/// Crates that only *read* metric snapshots; their string literals are
/// consumption sites. (`abr-lint` is excluded from the scan entirely —
/// this file would otherwise register its own doc examples.)
const CONSUMER_CRATES: &[&str] = &["abr-bench"];

/// Dot-suffixes that mark a path/file name, not a metric.
const FILE_EXTS: &[&str] = &[
    "csv", "folded", "json", "jsonl", "lock", "log", "md", "rs", "toml", "txt", "yaml", "yml",
];

/// One schema finding.
#[derive(Debug, Clone)]
pub struct SchemaFinding {
    /// `M001` (dead) or `M002` (phantom).
    pub rule: &'static str,
    /// File of the first registration (M001) / consumption (M002).
    pub file: String,
    /// 1-based line of that site.
    pub line: u32,
    /// The metric name.
    pub name: String,
}

impl SchemaFinding {
    /// Stable baseline key: the metric name.
    pub fn key(&self) -> String {
        self.name.clone()
    }

    /// Render as a [`Diagnostic`].
    pub fn diagnostic(&self) -> Diagnostic {
        let msg = match self.rule {
            "M001" => format!(
                "metric `{}` is registered but never read by any report/SLO/compare consumer; wire it into a consumer or delete it",
                self.name
            ),
            _ => format!(
                "metric `{}` is consumed but never registered by any producer; the reader sees eternal zeros",
                self.name
            ),
        };
        Diagnostic::new(self.rule, &self.file, self.line, msg)
    }
}

/// Whether `s` has the shape of a registry metric name:
/// `seg(.seg)+`, lowercase snake segments, not a file name.
pub fn is_metric_shaped(s: &str) -> bool {
    let mut segs = s.split('.');
    let Some(first) = segs.next() else {
        return false;
    };
    if !first
        .chars()
        .next()
        .map(|c| c.is_ascii_lowercase())
        .unwrap_or(false)
    {
        return false;
    }
    let mut rest = 0usize;
    let mut last = first;
    let seg_ok = |seg: &str| {
        !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    if !seg_ok(first) {
        return false;
    }
    for seg in segs {
        if !seg_ok(seg) {
            return false;
        }
        last = seg;
        rest += 1;
    }
    rest >= 1 && !FILE_EXTS.contains(&last)
}

/// Metric names inside `pNN(name)` quantile expressions of an SLO
/// string such as `p99(driver.service_us) < 150ms`.
fn slo_metric_names(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'p' {
            let mut j = i + 1;
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 && j < b.len() && b[j] == b'(' {
                if let Some(close) = s[j + 1..].find(')') {
                    let name = &s[j + 1..j + 1 + close];
                    if is_metric_shaped(name) {
                        out.push(name.to_string());
                    }
                    i = j + 1 + close;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Per-line allow set (rule ids only; validation lives in `rules.rs`).
fn allow_lines(lexed: &Lexed) -> BTreeMap<u32, BTreeSet<String>> {
    let mut allow: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for (applies_to, a) in lexed.annotation_lines() {
        allow.entry(applies_to).or_default().insert(a.rule.clone());
    }
    allow
}

/// Cross-check registrations against consumptions over the workspace.
/// `files` holds `(crate_name, rel_path, lexed)` per file.
pub fn analyze(files: &[(String, String, &Lexed)]) -> Vec<SchemaFinding> {
    // name -> first (file, line) on each side.
    let mut registered: BTreeMap<String, (String, u32, bool)> = BTreeMap::new();
    let mut consumed: BTreeMap<String, (String, u32, bool)> = BTreeMap::new();

    for (crate_name, rel_path, lexed) in files {
        if crate_name == "abr-lint" {
            continue;
        }
        let consumer = CONSUMER_CRATES.contains(&crate_name.as_str());
        let allows = allow_lines(lexed);
        let line_allowed =
            |line: u32, rule: &str| allows.get(&line).map(|s| s.contains(rule)).unwrap_or(false);
        let toks = &lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Str || lexed.in_test.get(i).copied().unwrap_or(false) {
                continue;
            }

            // SLO quantile expressions name consumed metrics wherever
            // they appear (engine defaults, harness overrides, docs in
            // code are comments and never reach here).
            for name in slo_metric_names(&t.text) {
                consumed
                    .entry(name)
                    .or_insert_with(|| (rel_path.clone(), t.line, line_allowed(t.line, "M002")));
            }

            if !is_metric_shaped(&t.text) || t.text.starts_with("wall.") {
                continue;
            }
            let register_pos = i >= 2
                && toks[i - 1].text == "("
                && toks[i - 2].kind == TokKind::Ident
                && REGISTER_FNS.contains(&toks[i - 2].text.as_str());

            if !consumer && register_pos {
                registered
                    .entry(t.text.clone())
                    .or_insert_with(|| (rel_path.clone(), t.line, line_allowed(t.line, "M001")));
            } else if consumer {
                consumed
                    .entry(t.text.clone())
                    .or_insert_with(|| (rel_path.clone(), t.line, line_allowed(t.line, "M002")));
            }
        }
    }

    let mut findings = Vec::new();
    for (name, (file, line, allowed)) in &registered {
        if !consumed.contains_key(name) && !allowed {
            findings.push(SchemaFinding {
                rule: "M001",
                file: file.clone(),
                line: *line,
                name: name.clone(),
            });
        }
    }
    for (name, (file, line, allowed)) in &consumed {
        if !registered.contains_key(name) && !allowed {
            findings.push(SchemaFinding {
                rule: "M002",
                file: file.clone(),
                line: *line,
                name: name.clone(),
            });
        }
    }
    // BTreeMap iteration already ordered by name within each rule.
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(files: &[(&str, &str, &str)]) -> Vec<(String, String)> {
        let lexed: Vec<_> = files.iter().map(|(_, _, s)| lex(s)).collect();
        let input: Vec<(String, String, &Lexed)> = files
            .iter()
            .zip(lexed.iter())
            .map(|((c, p, _), l)| (c.to_string(), p.to_string(), l))
            .collect();
        analyze(&input)
            .into_iter()
            .map(|f| (f.rule.to_string(), f.name))
            .collect()
    }

    #[test]
    fn matched_names_are_clean() {
        let out = run(&[
            (
                "abr-driver",
                "crates/abr-driver/src/d.rs",
                r#"fn f(r: &R) { let c = r.counter("driver.submitted"); }"#,
            ),
            (
                "abr-bench",
                "crates/abr-bench/src/r.rs",
                r#"fn g(snap: &S) { let v = snap["counters"]["driver.submitted"]; }"#,
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn dead_metric_is_m001_at_the_registration() {
        let out = run(&[(
            "abr-driver",
            "crates/abr-driver/src/d.rs",
            r#"fn f(r: &R) { let c = r.counter("driver.orphan_total"); }"#,
        )]);
        assert_eq!(out, vec![("M001".into(), "driver.orphan_total".into())]);
    }

    #[test]
    fn phantom_metric_is_m002_at_the_consumption() {
        let out = run(&[(
            "abr-bench",
            "crates/abr-bench/src/r.rs",
            r#"fn g(c: impl Fn(&str) -> u64) { let v = c("driver.typo_total"); }"#,
        )]);
        assert_eq!(out, vec![("M002".into(), "driver.typo_total".into())]);
    }

    #[test]
    fn slo_strings_consume_their_quantile_metrics() {
        let out = run(&[
            (
                "abr-driver",
                "crates/abr-driver/src/d.rs",
                r#"fn f(r: &R) { let h = r.hires("driver.service_us"); }"#,
            ),
            (
                "abr-bench",
                "crates/abr-bench/src/e.rs",
                r#"fn slos() -> Vec<&'static str> { vec!["p99(driver.service_us) < 150ms", "p999(driver.ghost_us) < 1s"] }"#,
            ),
        ]);
        // service_us is matched; ghost_us is consumed-never-registered.
        assert_eq!(out, vec![("M002".into(), "driver.ghost_us".into())]);
    }

    #[test]
    fn wall_namespace_and_file_names_are_exempt() {
        let out = run(&[
            (
                "abr-obs",
                "crates/abr-obs/src/t.rs",
                r#"fn f(r: &R) { let c = r.counter("wall.event_loop.ns"); }"#,
            ),
            (
                "abr-bench",
                "crates/abr-bench/src/b.rs",
                r#"fn g() { let p = "results/BENCH_experiments.json"; let q = "counts.json"; let r = "wall.day_end.ns"; }"#,
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_registers_and_consumes_nothing() {
        let out = run(&[(
            "abr-obs",
            "crates/abr-obs/src/registry.rs",
            "#[cfg(test)]\nmod t { fn f(r: &R) { let c = r.counter(\"io.test_only\"); } }\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn line_allow_suppresses_each_side() {
        let out = run(&[
            (
                "abr-driver",
                "crates/abr-driver/src/d.rs",
                "fn f(r: &R) { let c = r.counter(\"driver.spare_total\"); } // abr-lint: allow(M001, kept for abrctl scripts)\n",
            ),
            (
                "abr-bench",
                "crates/abr-bench/src/r.rs",
                "fn g(c: impl Fn(&str) -> u64) { c(\"driver.future_total\"); } // abr-lint: allow(M002, registered by the next PR)\n",
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn metric_shape_rules() {
        assert!(is_metric_shaped("driver.service_us"));
        assert!(is_metric_shaped("array.disks.dead"));
        assert!(!is_metric_shaped("nodots"));
        assert!(!is_metric_shaped("Upper.case"));
        assert!(!is_metric_shaped("has space.x"));
        assert!(!is_metric_shaped("counts.json"));
        assert!(!is_metric_shaped("a..b"));
        assert!(!is_metric_shaped(""));
    }
}
