//! A lightweight symbol table and call graph over the whole workspace,
//! built from the token streams of [`crate::lexer`] — no `syn`, no type
//! inference, just the structural conventions this workspace actually
//! uses.
//!
//! What it understands:
//!
//! * `fn` items — free functions, inherent/trait-impl methods (the
//!   `impl` self-type is recovered from the token stream, including
//!   `impl<...> Type<...> for ...` forms), trait default methods, and
//!   nested `fn`s (each token is attributed to its *innermost* owning
//!   function);
//! * call sites — plain calls `f(...)`, path calls `a::b::f(...)`
//!   (including turbofish `f::<T>(...)`), `Self::f(...)`, and method
//!   calls `.m(...)`.
//!
//! Resolution is deliberately over-approximate where the tokens cannot
//! say more: a method call `.m(...)` links to every workspace method
//! named `m`, a module-qualified call `runs::f(...)` to every free `f`.
//! Over-approximation is the safe direction for taint analysis — it can
//! produce a false edge, never miss a real one (short of function
//! pointers/closures passed as values, which this workspace's result
//! path does not use for nondeterministic work). A qualified call whose
//! qualifier names no workspace type and is capitalized (e.g.
//! `Vec::new`) resolves to nothing rather than to every `new`.

use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::BTreeMap;

/// Rust keywords that can precede `(` without being calls, plus item
/// keywords the definition scanner must not mistake for names.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while", "yield",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// One function (or method) definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the file in the workspace source list.
    pub file: usize,
    /// Self type for methods (`impl` / `trait` context), `None` for
    /// free functions.
    pub type_name: Option<String>,
    /// The function's own name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token index range of the body (empty for bodyless trait decls).
    pub body_start: usize,
    /// End of the body token range (exclusive).
    pub body_end: usize,
    /// Whether the definition sits inside `#[cfg(test)]` code.
    pub in_test: bool,
}

impl FnDef {
    /// `Type::name` for methods, plain `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.type_name {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An unresolved call site inside some function body.
#[derive(Debug, Clone)]
pub enum CallTarget {
    /// `.m(...)` — receiver type unknown.
    Method(String),
    /// `Qual::m(...)` — `Qual` is the path segment before the name
    /// (with `Self` already replaced by the enclosing impl type).
    Qualified(String, String),
    /// `m(...)` with no qualifier.
    Free(String),
}

/// A resolved call edge: `caller` invokes `callee` at `line` (of the
/// caller's file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Calling function (index into [`CallGraph::fns`]).
    pub caller: usize,
    /// Called function (index into [`CallGraph::fns`]).
    pub callee: usize,
    /// 1-based line of the call site.
    pub line: u32,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function definition, in (file, token-position) order.
    pub fns: Vec<FnDef>,
    /// Resolved call edges, sorted and deduplicated.
    pub edges: Vec<Edge>,
}

impl CallGraph {
    /// Indices of live (non-test) functions matching `name`, optionally
    /// constrained to an impl type.
    pub fn find(&self, type_name: Option<&str>, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.in_test
                    && f.name == name
                    && match type_name {
                        Some(t) => f.type_name.as_deref() == Some(t),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Per-file structural scan output: functions plus the innermost-owner
/// attribution for every token.
#[derive(Clone)]
pub struct FileFns {
    /// Functions defined in this file (indices are local).
    pub fns: Vec<FnDef>,
    /// `owner[i]` — local index of the innermost function owning token
    /// `i`, if any.
    pub owner: Vec<Option<usize>>,
}

/// Scan one lexed file for function definitions and token ownership.
pub fn scan_file(file_idx: usize, lexed: &Lexed) -> FileFns {
    let toks = &lexed.tokens;
    let n = toks.len();
    let mut fns: Vec<FnDef> = Vec::new();
    let mut owner: Vec<Option<usize>> = vec![None; n];

    // (depth the block opened at, self type) for impl/trait contexts.
    let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new();
    // (local fn index, depth its body opened at).
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    // Brace depth.
    let mut depth = 0usize;
    // A just-seen fn signature whose body `{` has not opened yet:
    // (local index, paren/bracket depth inside the signature).
    let mut pending_fn: Option<usize> = None;
    let mut sig_depth = 0usize;
    // A just-seen impl/trait whose block `{` has not opened yet.
    let mut pending_impl: Option<Option<String>> = None;

    let mut i = 0;
    while i < n {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "impl" => {
                    pending_impl = Some(parse_impl_type(toks, i + 1));
                }
                "trait" => {
                    if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                        pending_impl = Some(Some(name.text.clone()));
                    }
                }
                "fn" => {
                    if let Some(name) = toks
                        .get(i + 1)
                        .filter(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
                    {
                        let type_name = impl_stack.iter().rev().find_map(|(_, ty)| ty.clone());
                        fns.push(FnDef {
                            file: file_idx,
                            type_name,
                            name: name.text.clone(),
                            line: name.line,
                            body_start: 0,
                            body_end: 0,
                            in_test: lexed.in_test.get(i).copied().unwrap_or(false),
                        });
                        pending_fn = Some(fns.len() - 1);
                        sig_depth = 0;
                        owner[i] = fn_stack.last().map(|(f, _)| *f);
                        i += 1; // also attribute the name token below
                    }
                }
                _ => {}
            }
        }
        match t.text.as_str() {
            "(" | "[" if pending_fn.is_some() => sig_depth += 1,
            ")" | "]" if pending_fn.is_some() => sig_depth = sig_depth.saturating_sub(1),
            ";" if pending_fn.is_some() && sig_depth == 0 => {
                // Bodyless trait method declaration.
                pending_fn = None;
            }
            "{" => {
                depth += 1;
                if let Some(fid) = pending_fn.take() {
                    fns[fid].body_start = i + 1;
                    fn_stack.push((fid, depth));
                } else if let Some(ty) = pending_impl.take() {
                    impl_stack.push((depth, ty));
                }
            }
            "}" => {
                if let Some(&(fid, d)) = fn_stack.last() {
                    if d == depth {
                        fns[fid].body_end = i;
                        fn_stack.pop();
                    }
                }
                if let Some(&(d, _)) = impl_stack.last() {
                    if d == depth {
                        impl_stack.pop();
                    }
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
        owner[i] = fn_stack.last().map(|(f, _)| *f);
        i += 1;
    }
    FileFns { fns, owner }
}

/// Recover the self type of an `impl` item from the tokens after the
/// `impl` keyword: skip the generic parameter list, then take the last
/// path segment before the opening brace — or, when a `for` appears
/// (`impl Trait for Type`), the last segment after it.
fn parse_impl_type(toks: &[Tok], mut j: usize) -> Option<String> {
    let n = toks.len();
    if toks.get(j).map(|t| t.text == "<").unwrap_or(false) {
        j = skip_angles(toks, j);
    }
    let mut last: Option<String> = None;
    let mut angle = 0usize;
    while j < n {
        let t = &toks[j];
        if angle == 0 {
            match t.text.as_str() {
                "{" | ";" => break,
                "where" if t.kind == TokKind::Ident => break,
                "for" if t.kind == TokKind::Ident => last = None,
                "<" => angle += 1,
                _ => {
                    if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                        last = Some(t.text.clone());
                    }
                }
            }
        } else {
            match t.text.as_str() {
                "<" => angle += 1,
                // `->` inside Fn-trait sugar: the `>` there is not a
                // closing angle bracket.
                ">" if j > 0 && toks[j - 1].text != "-" => angle -= 1,
                _ => {}
            }
        }
        j += 1;
    }
    last
}

/// Given `toks[open_at] == "<"`, return the index one past the matching
/// `>`. Tolerates `->` inside (does not count its `>`).
fn skip_angles(toks: &[Tok], open_at: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open_at;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" if j > 0 && toks[j - 1].text != "-" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Extract call sites from one file, attributed to their owning
/// function: returns `(local fn index, target, line)` triples.
pub fn extract_calls(lexed: &Lexed, file_fns: &FileFns) -> Vec<(usize, CallTarget, u32)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            continue;
        }
        let Some(fid) = file_fns.owner[i] else {
            continue;
        };
        if lexed.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        // The fn's own name token in its definition is not a call.
        if i > 0 && toks[i - 1].kind == TokKind::Ident && toks[i - 1].text == "fn" {
            continue;
        }
        // Macro invocation names are not calls.
        if toks.get(i + 1).map(|t| t.text == "!").unwrap_or(false) {
            continue;
        }
        // Where does the argument list start? Directly, or after a
        // turbofish `::<...>`.
        let after = if toks.get(i + 1).map(|t| t.text == "(").unwrap_or(false) {
            Some(i + 1)
        } else if toks.get(i + 1).map(|t| t.text == ":").unwrap_or(false)
            && toks.get(i + 2).map(|t| t.text == ":").unwrap_or(false)
            && toks.get(i + 3).map(|t| t.text == "<").unwrap_or(false)
        {
            let k = skip_angles(toks, i + 3);
            toks.get(k)
                .map(|t| t.text == "(")
                .unwrap_or(false)
                .then_some(k)
        } else {
            None
        };
        if after.is_none() {
            continue;
        }

        let name = t.text.clone();
        let target = if i > 0 && toks[i - 1].text == "." {
            CallTarget::Method(name)
        } else if i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].kind == TokKind::Ident
        {
            let mut qual = toks[i - 3].text.clone();
            if qual == "Self" || qual == "self" {
                match file_fns.fns[fid].type_name.clone() {
                    Some(ty) => qual = ty,
                    None => {
                        out.push((fid, CallTarget::Free(name), t.line));
                        continue;
                    }
                }
            }
            CallTarget::Qualified(qual, name)
        } else {
            CallTarget::Free(name)
        };
        out.push((fid, target, t.line));
    }
    out
}

/// Build the workspace call graph from per-file scans.
///
/// `files` pairs each file's lexed form with its [`scan_file`] output;
/// the returned graph's `FnDef::file` indices refer to positions in
/// this slice.
pub fn build_graph(files: &[(&Lexed, &FileFns)]) -> CallGraph {
    // Global function list, remembering each file's local->global base.
    let mut fns: Vec<FnDef> = Vec::new();
    let mut base: Vec<usize> = Vec::with_capacity(files.len());
    for (_, ff) in files {
        base.push(fns.len());
        fns.extend(ff.fns.iter().cloned());
    }

    // Name indices over live functions.
    let mut by_method: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (gid, f) in fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        match &f.type_name {
            Some(ty) => {
                by_method.entry(&f.name).or_default().push(gid);
                by_qual.entry((ty, &f.name)).or_default().push(gid);
            }
            None => {
                by_free.entry(&f.name).or_default().push(gid);
            }
        }
    }

    let mut edges: Vec<Edge> = Vec::new();
    for (file_idx, (lexed, ff)) in files.iter().enumerate() {
        let calls = extract_calls(lexed, ff);
        for (local_fid, target, line) in calls {
            let caller = base[file_idx] + local_fid;
            if fns[caller].in_test {
                continue;
            }
            let callees: &[usize] = match &target {
                CallTarget::Method(m) => {
                    by_method.get(m.as_str()).map(Vec::as_slice).unwrap_or(&[])
                }
                CallTarget::Qualified(q, m) => {
                    if let Some(v) = by_qual.get(&(q.as_str(), m.as_str())) {
                        v.as_slice()
                    } else if q
                        .chars()
                        .next()
                        .map(|c| c.is_lowercase() || c == '_')
                        .unwrap_or(false)
                    {
                        // Module-qualified free call (`runs::f(...)`).
                        by_free.get(m.as_str()).map(Vec::as_slice).unwrap_or(&[])
                    } else {
                        // Foreign type (`Vec::new`): no workspace edge.
                        &[]
                    }
                }
                CallTarget::Free(m) => by_free.get(m.as_str()).map(Vec::as_slice).unwrap_or(&[]),
            };
            for &callee in callees {
                if callee != caller {
                    edges.push(Edge {
                        caller,
                        callee,
                        line,
                    });
                }
            }
        }
    }
    edges.sort();
    edges.dedup();
    CallGraph { fns, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph_of(sources: &[&str]) -> (Vec<crate::lexer::Lexed>, CallGraph) {
        let lexed: Vec<_> = sources.iter().map(|s| lex(s)).collect();
        let scans: Vec<FileFns> = lexed
            .iter()
            .enumerate()
            .map(|(i, l)| scan_file(i, l))
            .collect();
        let pairs: Vec<(&crate::lexer::Lexed, &FileFns)> = lexed.iter().zip(scans.iter()).collect();
        let g = build_graph(&pairs);
        (lexed, g)
    }

    #[test]
    fn free_fns_methods_and_impl_types_are_found() {
        let src = "fn free() {}\n\
                   struct Foo;\n\
                   impl Foo { fn method(&self) { free(); } }\n\
                   impl std::fmt::Display for Foo { fn fmt(&self) {} }\n\
                   trait Bar { fn defaulted(&self) { self.method(); } fn decl(&self); }\n";
        let (_l, g) = graph_of(&[src]);
        let names: Vec<String> = g.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(
            names,
            vec![
                "free",
                "Foo::method",
                "Foo::fmt",
                "Bar::defaulted",
                "Bar::decl"
            ]
        );
        // free() called from Foo::method; .method() from Bar::defaulted.
        assert!(g
            .edges
            .iter()
            .any(|e| g.fns[e.caller].qualified() == "Foo::method"
                && g.fns[e.callee].qualified() == "free"));
        assert!(g
            .edges
            .iter()
            .any(|e| g.fns[e.caller].qualified() == "Bar::defaulted"
                && g.fns[e.callee].qualified() == "Foo::method"));
    }

    #[test]
    fn nested_fns_own_their_tokens() {
        let src = "fn outer() { inner_call(); fn nested() { deep_call(); } }\n\
                   fn inner_call() {}\nfn deep_call() {}\n";
        let (_l, g) = graph_of(&[src]);
        let edge = |a: &str, b: &str| {
            g.edges
                .iter()
                .any(|e| g.fns[e.caller].name == a && g.fns[e.callee].name == b)
        };
        assert!(edge("outer", "inner_call"));
        assert!(edge("nested", "deep_call"));
        assert!(!edge("outer", "deep_call"), "deep_call belongs to nested");
    }

    #[test]
    fn qualified_self_and_turbofish_calls_resolve() {
        let src = "struct C;\n\
                   impl C {\n\
                     pub fn run(&self) { Self::helper(); parse::<u32>(); }\n\
                     fn helper() {}\n\
                   }\n\
                   fn parse<T>() {}\n";
        let (_l, g) = graph_of(&[src]);
        let edge = |a: &str, b: &str| {
            g.edges
                .iter()
                .any(|e| g.fns[e.caller].name == a && g.fns[e.callee].name == b)
        };
        assert!(edge("run", "helper"), "Self:: resolves to the impl type");
        assert!(edge("run", "parse"), "turbofish call resolves");
    }

    #[test]
    fn foreign_type_calls_make_no_edges() {
        let src = "fn new() {}\nfn f() { let v = Vec::new(); }\n";
        let (_l, g) = graph_of(&[src]);
        assert!(
            g.edges.is_empty(),
            "Vec::new must not resolve to the workspace fn `new`: {:?}",
            g.edges
        );
    }

    #[test]
    fn module_qualified_free_calls_resolve() {
        let (_l, g) = graph_of(&["fn f() { runs::helper(); }", "pub fn helper() {}"]);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.fns[g.edges[0].callee].name, "helper");
    }

    #[test]
    fn test_code_is_excluded_from_the_graph() {
        let src = "fn live() {}\n#[cfg(test)]\nmod t { fn case() { live(); } }\n";
        let (_l, g) = graph_of(&[src]);
        assert!(g.edges.is_empty());
        assert!(g.find(None, "case").is_empty());
        assert_eq!(g.find(None, "live").len(), 1);
    }

    #[test]
    fn cross_file_method_calls_link() {
        let a = "struct Campaign;\nimpl Campaign { pub fn run(&self) {} }\n";
        let b = "fn exec(c: &Campaign) { c.run(); }\n";
        let (_l, g) = graph_of(&[a, b]);
        assert!(g
            .edges
            .iter()
            .any(|e| g.fns[e.caller].name == "exec"
                && g.fns[e.callee].qualified() == "Campaign::run"));
    }
}
