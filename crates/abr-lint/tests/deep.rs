//! Integration tests for the deep pass (D004/D005 taint, M001/M002
//! schema, the per-rule baseline ratchet), driven two ways:
//!
//! * a fixture mini-workspace under `tests/fixture_ws/` with known
//!   chains at known lines — `workspace_sources` only scans `src/`
//!   directories under a root's `crates/`, so the fixture never
//!   pollutes a real workspace lint;
//! * the real workspace, which must produce byte-identical `--json`
//!   output across repeated runs and across `--jobs` values.

use abr_lint::{find_root, lint_sources, lint_workspace, lint_workspace_jobs, load_workspace};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixture_ws")
}

fn repo_root() -> PathBuf {
    find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("repo root above abr-lint")
}

/// `(rule, file, line)` for every diagnostic of the deep rules, in
/// report order. Per-file rules (the fixture's raw `Instant::now`
/// lines also trip D002) are exercised by tests/self_check.rs.
fn deep_keys(diags: &[abr_lint::Diagnostic]) -> Vec<(String, String, u32)> {
    diags
        .iter()
        .filter(|d| matches!(d.rule.as_str(), "D004" | "D005" | "M001" | "M002"))
        .map(|d| (d.rule.clone(), d.file.clone(), d.line))
        .collect()
}

#[test]
fn fixture_finds_two_hop_taint_and_schema_mismatches() {
    let report = lint_workspace(&fixture_root());
    assert_eq!(
        deep_keys(&report.diags),
        vec![
            (
                "M002".to_string(),
                "crates/abr-bench/src/lib.rs".to_string(),
                5
            ),
            (
                "D004".to_string(),
                "crates/abr-fixt/src/lib.rs".to_string(),
                20
            ),
            (
                "D005".to_string(),
                "crates/abr-fixt/src/lib.rs".to_string(),
                28
            ),
            (
                "M001".to_string(),
                "crates/abr-obs/src/lib.rs".to_string(),
                12
            ),
        ],
        "expected exactly the 2-hop D004 chain, the D005 seed, one dead\n\
         and one phantom metric — full report:\n{}",
        report.render()
    );
}

#[test]
fn fixture_chain_walks_through_the_intermediate_fn() {
    let report = lint_workspace(&fixture_root());
    let d004 = report
        .diags
        .iter()
        .find(|d| d.rule == "D004")
        .expect("D004 finding");
    assert!(
        d004.message
            .contains("Campaign::run -> helper_a -> helper_b"),
        "chain must name every hop: {}",
        d004.message
    );
}

#[test]
fn fixture_call_site_allow_cuts_the_chain() {
    // cut_chain() holds an identical Instant::now sink, but the only
    // edge into it carries allow(D004); dead_fn is not called at all.
    // Neither may surface as D004 (their raw D002 seed still fires,
    // proving the file was scanned).
    let report = lint_workspace(&fixture_root());
    for d in &report.diags {
        if d.rule == "D004" {
            assert!(
                d.line != 24 && d.line != 32,
                "cut/unreachable chain leaked: {}",
                d.message
            );
        }
    }
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.rule == "D002" && d.line == 24),
        "the per-file pass must still see cut_chain's sink"
    );
}

#[test]
fn fixture_baseline_freezes_each_finding_individually() {
    let files = load_workspace(&fixture_root(), 1);
    let baseline = "\
# fixture: frozen two-hop chain, fixed in the next milestone
D004 crates/abr-fixt/src/lib.rs:helper_b:Instant::now 1
# fixture: keyed lookup only, never iterated
D005 crates/abr-fixt/src/lib.rs:seeded:HashMap 1
# fixture: report wiring lands with the next schema rev
M001 fixt.dead.ops 1
# fixture: producer registration lands with the next schema rev
M002 fixt.phantom.ops 1
";
    let report = lint_sources(&files, "", baseline);
    assert!(
        deep_keys(&report.diags).is_empty(),
        "a justified baseline must silence every deep finding:\n{}",
        report.render()
    );
}

#[test]
fn fixture_baseline_over_and_under_counts_are_both_errors() {
    let files = load_workspace(&fixture_root(), 1);

    // Count above reality: stale, must ratchet down.
    let stale = "\
# fixture: justified
D004 crates/abr-fixt/src/lib.rs:helper_b:Instant::now 2
";
    let report = lint_sources(&files, "", stale);
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.rule == "D004" && d.message.contains("is stale")),
        "over-count must flag a stale baseline:\n{}",
        report.render()
    );

    // Entry for a finding that no longer exists at all: also stale.
    let gone = "\
# fixture: justified
D004 crates/abr-fixt/src/lib.rs:no_such_fn:Instant::now 1
";
    let report = lint_sources(&files, "", gone);
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.rule == "D004" && d.message.contains("actual 0")),
        "entry without a live finding must flag stale:\n{}",
        report.render()
    );
}

#[test]
fn fixture_baseline_entry_without_comment_is_l001() {
    let files = load_workspace(&fixture_root(), 1);
    let unjustified = "D004 crates/abr-fixt/src/lib.rs:helper_b:Instant::now 1\n";
    let report = lint_sources(&files, "", unjustified);
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.rule == "L001" && d.message.contains("no justifying comment")),
        "comment-less entries must be rejected:\n{}",
        report.render()
    );

    // A TODO placeholder (what --write-baseline emits) does not count.
    let todo = "\
# TODO: justify this baseline entry
D004 crates/abr-fixt/src/lib.rs:helper_b:Instant::now 1
";
    let report = lint_sources(&files, "", todo);
    assert!(
        report
            .diags
            .iter()
            .any(|d| d.rule == "L001" && d.message.contains("no justifying comment")),
        "TODO placeholders do not justify an entry:\n{}",
        report.render()
    );
}

#[test]
fn fixture_json_reports_deep_counts_and_diagnostics() {
    let report = lint_workspace(&fixture_root());
    let json = report.render_json();
    assert!(json.contains("\"D004 crates/abr-fixt/src/lib.rs:helper_b:Instant::now\": 1"));
    assert!(json.contains("\"M001 fixt.dead.ops\": 1"));
    assert!(json.contains("\"M002 fixt.phantom.ops\": 1"));
    assert!(json.contains("\"rule\": \"D004\""));
}

#[test]
fn real_workspace_json_is_byte_identical_across_runs_and_jobs() {
    let root = repo_root();
    let serial = lint_workspace_jobs(&root, 1).render_json();
    let serial_again = lint_workspace_jobs(&root, 1).render_json();
    let parallel = lint_workspace_jobs(&root, 4).render_json();
    assert_eq!(serial, serial_again, "repeat runs must agree byte-for-byte");
    assert_eq!(serial, parallel, "--jobs must not change a single byte");
}
