//! Producer fixture: `fixt.live.ops` is consumed by the abr-bench
//! fixture; `fixt.dead.ops` is registered here and read nowhere (M001).

pub struct Registry;

impl Registry {
    pub fn counter(&mut self, _name: &str) {}
}

pub fn register(r: &mut Registry) {
    r.counter("fixt.live.ops");
    r.counter("fixt.dead.ops");
}
