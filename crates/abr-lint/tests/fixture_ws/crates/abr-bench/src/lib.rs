//! Consumer fixture: reads the live metric plus one phantom name no
//! producer registers (M002).

pub fn report(read: &dyn Fn(&str) -> u64) -> u64 {
    read("fixt.live.ops") + read("fixt.phantom.ops")
}
