//! Taint fixture: each chain below is asserted by tests/deep.rs at
//! these exact line numbers — renumber the asserts if you edit.

pub struct Campaign;

impl Campaign {
    pub fn run(&self) {
        helper_a();
        // abr-lint: allow(D004, fixture: this edge is cut, the chain below must stay silent)
        cut_chain();
        seeded();
    }
}

fn helper_a() {
    helper_b();
}

fn helper_b() {
    let _t = std::time::Instant::now();
}

fn cut_chain() {
    let _t = std::time::Instant::now();
}

fn seeded() {
    let mut m = std::collections::HashMap::new();
    m.insert(1u32, 2u32);
}

fn dead_fn() {
    let _ = std::time::SystemTime::now();
}
