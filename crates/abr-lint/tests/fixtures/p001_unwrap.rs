// Fixture for P001: unwrap()/expect() in non-test library code.
pub fn naughty(v: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = v.unwrap();
    let b = r.expect("fixture");
    a + b
}

pub fn excused(v: Option<u32>) -> u32 {
    v.unwrap() // abr-lint: allow(P001, fixture: caller guarantees Some)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = Some(1u32).unwrap();
    }
}
