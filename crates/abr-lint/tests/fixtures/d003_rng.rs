// Fixture for D003: unseeded randomness (banned in every crate).
pub fn naughty() -> u64 {
    let mut rng = thread_rng();
    let x: u64 = rand::random();
    let _ = &mut rng;
    x
}
