// Fixture for L001: malformed annotations.
pub fn f(v: Option<u32>) -> u32 {
    v.unwrap() // abr-lint: allow(D999, no such rule)
}

pub fn g(v: Option<u32>) -> u32 {
    v.unwrap() // abr-lint: allow(P001,)
}
