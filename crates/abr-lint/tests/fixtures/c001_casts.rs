// Fixture for C001: narrowing casts. Linted under the rel_path of a
// geometry file (the rule is file-name scoped).
pub fn naughty(sector: u64, cyl: usize) -> (u32, u16) {
    let a = sector as u32;
    let b = cyl as u16;
    (a, b)
}

pub fn fine(sector: u32) -> u64 {
    sector as u64
}
