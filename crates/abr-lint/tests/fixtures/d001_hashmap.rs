// Fixture for D001: randomized-order containers on the result path.
// Linted as crate `abr-core`, so the rule applies.
use std::collections::BTreeMap;
use std::collections::HashMap;

pub struct Counts {
    fine: BTreeMap<u64, u64>,
    bad: HashMap<u64, u64>,
    excused: HashMap<u64, u64>, // abr-lint: allow(D001, fixture: order never leaves this struct)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _scratch: std::collections::HashMap<u8, u8> = Default::default();
    }
}
