// Fixture for D002: wall-clock and environment reads.
use std::time::{Instant, SystemTime};

pub fn naughty() {
    let t = Instant::now();
    let s = SystemTime::now();
    let e = std::env::var("HOME");
    let _ = (t, s, e);
}

pub fn excused() -> (Instant, Instant) {
    // abr-lint: allow(D002, fixture: annotation-only line excuses the next line)
    let a = Instant::now();
    let b = Instant::now(); // abr-lint: allow(D002, fixture: trailing annotation)
    (a, b)
}
