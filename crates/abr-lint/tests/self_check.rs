//! Self-tests for the analyzer, in two halves:
//!
//! * fixture tests — each file under `tests/fixtures/` carries known
//!   violations at known lines; the analyzer must find exactly those
//!   (fixtures are plain data here: `workspace_sources` only scans
//!   `src/`, so they never pollute a real workspace lint);
//! * repo gates — the workspace itself must lint clean, and the P001
//!   budget file must byte-match reality (the ratchet: debt can only
//!   go down, and only by regenerating the file).

use abr_lint::lexer::lex;
use abr_lint::rules::{lint_file, FileCtx, FileLint};
use abr_lint::{find_root, lint_workspace, workspace_sources};
use std::path::Path;

fn lint_fixture(name: &str, crate_name: &str, rel_path: &str) -> FileLint {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    let lexed = lex(&source);
    lint_file(&FileCtx {
        crate_name,
        rel_path,
        lexed: &lexed,
    })
}

/// (rule, line) pairs of every diagnostic, in order.
fn keys(lint: &FileLint) -> Vec<(String, u32)> {
    lint.diags
        .iter()
        .map(|d| (d.rule.clone(), d.line))
        .collect()
}

#[test]
fn fixture_d001_flags_hashmap_not_btreemap() {
    let lint = lint_fixture(
        "d001_hashmap.rs",
        "abr-core",
        "crates/abr-core/src/fixture.rs",
    );
    assert_eq!(
        keys(&lint),
        vec![("D001".to_string(), 4), ("D001".to_string(), 8)],
        "expected the use and the un-annotated field, not the annotated field or test code:\n{}",
        render(&lint)
    );
    assert!(lint.p001_lines.is_empty());
}

#[test]
fn fixture_d001_silent_outside_result_path() {
    let lint = lint_fixture(
        "d001_hashmap.rs",
        "abr-bench",
        "crates/abr-bench/src/fixture.rs",
    );
    assert!(lint.diags.is_empty(), "{}", render(&lint));
}

#[test]
fn fixture_d002_flags_clock_and_env_reads() {
    let lint = lint_fixture(
        "d002_wallclock.rs",
        "abr-core",
        "crates/abr-core/src/fixture.rs",
    );
    assert_eq!(
        keys(&lint),
        vec![
            ("D002".to_string(), 2), // SystemTime in the use list
            ("D002".to_string(), 5), // Instant::now
            ("D002".to_string(), 6), // SystemTime::now
            ("D002".to_string(), 7), // env::var
        ],
        "both annotation forms (own-line and trailing) must excuse lines 13/14:\n{}",
        render(&lint)
    );
}

#[test]
fn fixture_d002_allowlisted_file_is_exempt() {
    // The allowlist is per rel_path; the same source under timer.rs is clean.
    let lint = lint_fixture(
        "d002_wallclock.rs",
        "abr-obs",
        "crates/abr-obs/src/timer.rs",
    );
    assert!(lint.diags.is_empty(), "{}", render(&lint));
}

#[test]
fn fixture_d003_flags_unseeded_randomness_in_any_crate() {
    // abr-bench is NOT a result-path crate, but D003 applies everywhere.
    let lint = lint_fixture(
        "d003_rng.rs",
        "abr-bench",
        "crates/abr-bench/src/fixture.rs",
    );
    assert_eq!(
        keys(&lint),
        vec![("D003".to_string(), 3), ("D003".to_string(), 4)],
        "{}",
        render(&lint)
    );
}

#[test]
fn fixture_c001_flags_narrowing_casts_in_geometry_files_only() {
    let lint = lint_fixture(
        "c001_casts.rs",
        "abr-disk",
        "crates/abr-disk/src/geometry.rs",
    );
    assert_eq!(
        keys(&lint),
        vec![("C001".to_string(), 4), ("C001".to_string(), 5)],
        "the widening `as u64` must not fire:\n{}",
        render(&lint)
    );
    // Same source under a non-geometry file name: clean.
    let lint = lint_fixture("c001_casts.rs", "abr-disk", "crates/abr-disk/src/other.rs");
    assert!(lint.diags.is_empty(), "{}", render(&lint));
}

#[test]
fn fixture_p001_counts_unannotated_nontest_unwraps() {
    let lint = lint_fixture(
        "p001_unwrap.rs",
        "abr-core",
        "crates/abr-core/src/fixture.rs",
    );
    assert!(lint.diags.is_empty(), "{}", render(&lint));
    assert_eq!(
        lint.p001_lines,
        vec![3, 4],
        "annotated and #[cfg(test)] unwraps must not be counted"
    );
}

#[test]
fn fixture_p001_exempt_in_binaries() {
    let lint = lint_fixture(
        "p001_unwrap.rs",
        "abr-core",
        "crates/abr-core/src/bin/tool.rs",
    );
    assert!(lint.p001_lines.is_empty(), "bin targets may unwrap freely");
}

#[test]
fn fixture_l001_flags_malformed_annotations() {
    let lint = lint_fixture(
        "l001_annotations.rs",
        "abr-core",
        "crates/abr-core/src/fixture.rs",
    );
    assert_eq!(
        keys(&lint),
        vec![("L001".to_string(), 3), ("L001".to_string(), 7)],
        "unknown rule and empty reason must both be L001:\n{}",
        render(&lint)
    );
    // The unknown-rule annotation excuses nothing, so line 3's unwrap
    // still counts; the empty-reason P001 allow still suppresses line 7
    // (the L001 is the enforcement).
    assert_eq!(lint.p001_lines, vec![3]);
}

fn render(lint: &FileLint) -> String {
    lint.diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------- repo gates

fn repo_root() -> std::path::PathBuf {
    find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root above abr-lint")
}

/// The acceptance gate: the workspace lints clean. Any new violation
/// fails this test (and `cargo run -p abr-lint -- --workspace` in CI).
#[test]
fn repo_lints_clean() {
    let report = lint_workspace(&repo_root());
    assert!(
        report.diags.is_empty(),
        "workspace has lint violations:\n{}",
        report.render()
    );
}

/// The ratchet: the committed budget byte-matches reality. A fixed
/// unwrap makes this fail until the budget is regenerated (downward);
/// a new unwrap fails `repo_lints_clean` with a P001 instead.
#[test]
fn p001_budget_matches_reality() {
    let root = repo_root();
    let report = lint_workspace(&root);
    let committed =
        std::fs::read_to_string(root.join(abr_lint::BUDGET_PATH)).expect("budget file present");
    assert_eq!(
        committed,
        report.render_budget(),
        "p001_budget.txt is out of date; regenerate with \
         `cargo run -p abr-lint -- --workspace --update-budget`"
    );
}

/// Fixtures must stay invisible to the workspace scan (they contain
/// deliberate violations).
#[test]
fn fixtures_are_not_scanned() {
    for (_, rel, _) in workspace_sources(&repo_root()) {
        assert!(
            !rel.contains("tests/fixtures"),
            "fixture leaked into workspace scan: {rel}"
        );
    }
}
