//! The rearrangement daemon.
//!
//! Combines the user-level processes of §4.2: every `read_period` (two
//! minutes in the paper) it reads and clears the driver's request-monitor
//! table and feeds the records to the reference stream analyzer; at the
//! end of each day it produces the hot list, optionally rearranges, and
//! resets the counts ("block reference counts measured during one day
//! were used (at the end of the day) to rearrange blocks for the next
//! day's requests", §5.1).

use crate::analyzer::{HotBlock, ReferenceAnalyzer};
use crate::arranger::{BlockArranger, RearrangeReport};
use abr_driver::{AdaptiveDriver, DriverError, Ioctl, IoctlReply};
use abr_obs::{record_with, time_scope, ObsEvent, RearrangePhase};
use abr_sim::{SimDuration, SimTime};

/// The periodic monitoring + daily rearrangement controller.
pub struct RearrangementDaemon {
    /// Analyzer over *all* requests.
    analyzer: Box<dyn ReferenceAnalyzer>,
    /// A parallel analyzer over read requests only (for the paper's
    /// read-only distributions, Figures 5 and 7).
    read_analyzer: crate::analyzer::FullAnalyzer,
    arranger: BlockArranger,
    read_period: SimDuration,
    /// Requests that went unrecorded because the monitor table filled.
    dropped: u64,
    /// Use incremental rearrangement (evict/copy only the differences)
    /// instead of the paper's full clean-and-recopy cycle.
    incremental: bool,
    /// Reused per-collect block buffers (all requests / reads only), so
    /// a collection window feeds each analyzer in one batched call.
    collect_scratch: Vec<u64>,
    read_scratch: Vec<u64>,
}

impl std::fmt::Debug for RearrangementDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RearrangementDaemon")
            .field("policy", &self.arranger.policy_name())
            .field("tracked", &self.analyzer.tracked())
            .finish_non_exhaustive()
    }
}

impl RearrangementDaemon {
    /// A daemon reading the request table every `read_period` (the paper
    /// used two minutes) and rearranging with `arranger`.
    pub fn new(
        analyzer: Box<dyn ReferenceAnalyzer>,
        arranger: BlockArranger,
        read_period: SimDuration,
    ) -> Self {
        assert!(read_period > SimDuration::ZERO);
        RearrangementDaemon {
            analyzer,
            read_analyzer: crate::analyzer::FullAnalyzer::new(),
            arranger,
            read_period,
            dropped: 0,
            incremental: false,
            collect_scratch: Vec::new(),
            read_scratch: Vec::new(),
        }
    }

    /// Switch between the paper's full clean-and-recopy cycle (default)
    /// and incremental rearrangement.
    pub fn set_incremental(&mut self, incremental: bool) {
        self.incremental = incremental;
    }

    /// The monitor read period.
    pub fn read_period(&self) -> SimDuration {
        self.read_period
    }

    /// Requests dropped by the monitor so far today.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Read and clear the driver's request table, feeding the analyzer.
    /// Call every [`RearrangementDaemon::read_period`].
    pub fn collect(&mut self, driver: &mut AdaptiveDriver, now: SimTime) {
        let _t = time_scope("analyzer");
        match driver
            .ioctl(Ioctl::ReadRequestTable, now)
            .expect("monitor reads are infallible")
        {
            IoctlReply::RequestTable { records, dropped } => {
                self.dropped += dropped;
                self.collect_scratch.clear();
                self.read_scratch.clear();
                for r in &records {
                    self.collect_scratch.push(r.block);
                    if r.dir.is_read() {
                        self.read_scratch.push(r.block);
                    }
                }
                self.analyzer.observe_each(&self.collect_scratch);
                self.read_analyzer.observe_each(&self.read_scratch);
            }
            _ => unreachable!("ReadRequestTable replies RequestTable"),
        }
    }

    /// Today's hot list (all requests), ranked.
    pub fn hot_list(&self, n: usize) -> Vec<HotBlock> {
        self.analyzer.hot_list(n)
    }

    /// Today's full block request distribution — all requests and
    /// reads-only — for Figures 5 and 7.
    pub fn distributions(&self) -> (Vec<HotBlock>, Vec<HotBlock>) {
        (
            self.analyzer.hot_list(self.analyzer.tracked()),
            self.read_analyzer.distribution(),
        )
    }

    /// Total requests observed today.
    pub fn observed(&self) -> u64 {
        self.analyzer.total_observations()
    }

    /// Online rearrangement step (extension; see
    /// `ExperimentConfig::online`): incrementally re-place the hottest
    /// `n_blocks` from the counts accumulated *so far today*, without
    /// resetting them. Intended for idle moments — an intelligent
    /// controller (the paper's Loge comparison, §1.1) would do exactly
    /// this below the host. Returns `Err(Busy)` if requests are
    /// outstanding; callers simply skip the tick.
    pub fn rearrange_online(
        &mut self,
        driver: &mut AdaptiveDriver,
        n_blocks: usize,
        now: SimTime,
    ) -> Result<RearrangeReport, DriverError> {
        let hot = self.analyzer.hot_list(n_blocks);
        if hot.is_empty() {
            return Ok(RearrangeReport::default());
        }
        let _t = time_scope("placement");
        self.arranger
            .rearrange_incremental(driver, &hot, n_blocks, now)
    }

    /// End the day without touching the reserved area (online mode keeps
    /// its placement warm across days); daily counts are still
    /// reset/decayed per the analyzer.
    pub fn end_day_keep_placement(&mut self) {
        self.analyzer.reset();
        self.read_analyzer.reset();
        self.dropped = 0;
    }

    /// End the day: rearrange the hottest `n_blocks` blocks for tomorrow
    /// (or clean the reserved area if `n_blocks == 0`), then reset the
    /// daily counts.
    pub fn end_day(
        &mut self,
        driver: &mut AdaptiveDriver,
        n_blocks: usize,
        now: SimTime,
    ) -> Result<RearrangeReport, DriverError> {
        let hot = self.analyzer.hot_list(n_blocks);
        self.end_day_with(driver, &hot, n_blocks, now)
    }

    /// Like [`RearrangementDaemon::end_day`] but with an externally
    /// supplied hot list — used for selection-strategy ablations (e.g.
    /// cylinder-granularity selection) that rank blocks differently from
    /// plain reference counting.
    pub fn end_day_with(
        &mut self,
        driver: &mut AdaptiveDriver,
        hot: &[HotBlock],
        n_blocks: usize,
        now: SimTime,
    ) -> Result<RearrangeReport, DriverError> {
        let _t = time_scope("placement");
        let moving = driver.layout().is_some();
        if moving {
            // A `Start` with no matching `Stop` in a trace marks a pass
            // that failed outright (the error path below returns early).
            record_with(|| ObsEvent::Rearrange {
                phase: RearrangePhase::Start,
                at_us: now.as_micros(),
                placed: 0,
                failed: 0,
                io_ops: 0,
                busy_us: 0,
            });
        }
        let report = if !moving {
            // No reserved area (plain disk, or the cylinder-shuffling
            // baseline): nothing to move, just roll the day over.
            RearrangeReport::default()
        } else if n_blocks == 0 {
            self.arranger.clean(driver, now)?
        } else if self.incremental {
            self.arranger
                .rearrange_incremental(driver, hot, n_blocks, now)?
        } else {
            self.arranger.rearrange(driver, hot, n_blocks, now)?
        };
        if moving {
            record_with(|| ObsEvent::Rearrange {
                phase: RearrangePhase::Stop,
                at_us: (now + report.busy).as_micros(),
                placed: report.blocks_placed,
                failed: report.blocks_failed,
                io_ops: report.io_ops,
                busy_us: report.busy.as_micros(),
            });
        }
        self.analyzer.reset();
        self.read_analyzer.reset();
        self.dropped = 0;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::FullAnalyzer;
    use crate::placement::PolicyKind;
    use abr_disk::{models, Disk, DiskLabel};
    use abr_driver::request::IoRequest;
    use abr_driver::{DriverConfig, SchedulerKind};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn driver() -> AdaptiveDriver {
        let model = models::tiny_test_disk();
        let label = DiskLabel::rearranged_aligned(model.geometry, 10, 8);
        let mut disk = Disk::new(model);
        let cfg = DriverConfig {
            block_size: 4096,
            scheduler: SchedulerKind::Scan,
            monitor_capacity: 1000,
            table_max_entries: 64,
            ..DriverConfig::default()
        };
        AdaptiveDriver::format(&mut disk, &label, &cfg);
        AdaptiveDriver::attach(disk, cfg).unwrap()
    }

    fn daemon() -> RearrangementDaemon {
        RearrangementDaemon::new(
            Box::new(FullAnalyzer::new()),
            BlockArranger::new(PolicyKind::OrganPipe.make(1)),
            SimDuration::from_mins(2),
        )
    }

    #[test]
    fn collect_feeds_analyzer() {
        let mut d = driver();
        let mut dm = daemon();
        // 10 requests to block 2, 3 to block 7.
        let mut clk = 0u64;
        for _ in 0..10 {
            d.submit(IoRequest::read(0, 16, 8), t(clk)).unwrap();
            d.drain();
            clk += 100_000;
        }
        for _ in 0..3 {
            d.submit(IoRequest::read(0, 56, 8), t(clk)).unwrap();
            d.drain();
            clk += 100_000;
        }
        dm.collect(&mut d, t(clk));
        assert_eq!(dm.observed(), 13);
        let hot = dm.hot_list(2);
        assert_eq!(hot[0].block, 2);
        assert_eq!(hot[0].count, 10);
        assert_eq!(hot[1].block, 7);
        // Read distribution matches (all were reads).
        let (all, reads) = dm.distributions();
        assert_eq!(all.len(), reads.len());
    }

    #[test]
    fn end_day_rearranges_and_resets() {
        let mut d = driver();
        let mut dm = daemon();
        let mut clk = 0u64;
        for _ in 0..5 {
            d.submit(IoRequest::read(0, 16, 8), t(clk)).unwrap();
            d.drain();
            clk += 100_000;
        }
        dm.collect(&mut d, t(clk));
        let report = dm.end_day(&mut d, 1, t(clk + 1_000_000)).unwrap();
        assert_eq!(report.blocks_placed, 1);
        assert_eq!(d.block_table().len(), 1);
        assert_eq!(dm.observed(), 0, "counts reset for the new day");
    }

    #[test]
    fn end_day_zero_blocks_cleans() {
        let mut d = driver();
        let mut dm = daemon();
        let mut clk = 0u64;
        for _ in 0..5 {
            d.submit(IoRequest::read(0, 16, 8), t(clk)).unwrap();
            d.drain();
            clk += 100_000;
        }
        dm.collect(&mut d, t(clk));
        dm.end_day(&mut d, 1, t(clk + 1_000_000)).unwrap();
        assert_eq!(d.block_table().len(), 1);
        // Off day: clean everything.
        let report = dm.end_day(&mut d, 0, t(clk + 60_000_000)).unwrap();
        assert_eq!(report.blocks_placed, 0);
        assert!(d.block_table().is_empty());
    }

    #[test]
    fn writes_count_toward_all_but_not_reads() {
        let mut d = driver();
        let mut dm = daemon();
        d.submit(IoRequest::write_zeroes(0, 16, 8), t(0)).unwrap();
        d.drain();
        dm.collect(&mut d, t(1_000_000));
        let (all, reads) = dm.distributions();
        assert_eq!(all.len(), 1);
        assert!(reads.is_empty());
    }
}
