//! The experiment harness: a simulated file server running multi-day
//! measured workloads, reproducing the paper's experimental method (§5).
//!
//! One [`Experiment`] assembles the full stack — disk mechanism, adaptive
//! driver, FFS-lite file system, synthetic workload, rearrangement daemon
//! — and runs *days*: 15 hours of request traffic (7am–10pm in the
//! paper), with the update daemon flushing dirty buffers every 30 s and
//! the monitoring process reading the request table every 2 minutes. At
//! the end of each day the caller decides how many blocks to place for
//! the next day (0 = an "off" day), exactly like the paper's alternating
//! on/off protocol.

use crate::analyzer::{BoundedAnalyzer, FullAnalyzer, ReferenceAnalyzer};
use crate::arranger::{BlockArranger, RearrangeReport};
use crate::daemon::RearrangementDaemon;
use crate::metrics::DayMetrics;
use crate::placement::PolicyKind;
use abr_disk::fault::{FaultInjector, FaultPlan};
use abr_disk::{Disk, DiskLabel, DiskModel};
use abr_driver::{AdaptiveDriver, DriverConfig, DriverError, Ioctl, IoctlReply, SchedulerKind};
use abr_fs::{FileSystem, FsConfig, MountMode};
use abr_sim::{SimDuration, SimRng, SimTime};
use abr_workload::{WorkloadProfile, WorkloadState};

/// Simulated progress accumulated on the current thread: how much
/// simulated time [`Experiment::run_day`] has advanced and how many days
/// completed since the last [`run_meter_reset`].
///
/// The parallel benchmark engine executes each run entirely on one
/// worker thread, resets the meter before the run and snapshots it
/// after, attributing a simulated-time/real-time ratio to every run even
/// when the experiments are constructed deep inside a regenerator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMeter {
    /// Simulated time advanced by completed `run_day` calls.
    pub sim: SimDuration,
    /// Number of completed measured days (warm-up days included).
    pub days: u64,
}

thread_local! {
    static RUN_METER: std::cell::Cell<RunMeter> = const {
        std::cell::Cell::new(RunMeter {
            sim: SimDuration::ZERO,
            days: 0,
        })
    };
}

/// Zero the current thread's [`RunMeter`].
pub fn run_meter_reset() {
    RUN_METER.with(|m| m.set(RunMeter::default()));
}

/// Snapshot the current thread's [`RunMeter`].
pub fn run_meter() -> RunMeter {
    RUN_METER.with(|m| m.get())
}

/// Credit one completed day of `sim` simulated time to the current
/// thread's [`RunMeter`] (and the registry's `engine.*` counters).
/// Called by [`Experiment::run_day`]; exposed so alternative harnesses
/// (the `abr-array` volume experiment) meter their days identically.
pub fn run_meter_add(sim: SimDuration) {
    RUN_METER.with(|m| {
        let mut v = m.get();
        v.sim += sim;
        v.days += 1;
        m.set(v);
    });
    // Mirror into the unified registry so a run's metrics snapshot
    // carries the same progress figures as the meter.
    abr_obs::with_registry(|r| {
        let sim_us = r.counter("engine.sim_us");
        let days = r.counter("engine.days");
        r.inc(sim_us, sim.as_micros());
        r.inc(days, 1);
    });
    // Close out the day in the metric time series: this runs after the
    // day-end stats ioctl flushed the driver's batched observations, so
    // the recorded deltas are exactly this day's traffic. SLOs installed
    // for the run are evaluated on the same deltas.
    abr_obs::day_series_record();
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The disk under test.
    pub disk: DiskModel,
    /// Reserved cylinders for rearrangement (paper: 48 on the Toshiba,
    /// 80 on the Fujitsu). 0 disables rearrangement entirely.
    pub reserved_cylinders: u32,
    /// Put the reserved region at the edge of the disk instead of the
    /// middle (ablation: organ-pipe theory says the middle is optimal).
    pub reserved_at_edge: bool,
    /// Workload to run.
    pub profile: WorkloadProfile,
    /// Placement policy for rearranged blocks.
    pub policy: PolicyKind,
    /// Disk queueing policy (the measured system ran SCAN).
    pub scheduler: SchedulerKind,
    /// Buffer cache capacity in blocks.
    pub cache_blocks: usize,
    /// Update-daemon period (classic: 30 s).
    pub sync_period: SimDuration,
    /// Request-monitor read period (paper: 2 minutes).
    pub monitor_period: SimDuration,
    /// Reference-analyzer list capacity; `None` = unbounded exact counts
    /// (the paper's configuration).
    pub analyzer_capacity: Option<usize>,
    /// Carry counts across days with this decay factor instead of the
    /// paper's nightly reset (extension; overrides `analyzer_capacity`).
    pub analyzer_decay: Option<f64>,
    /// Spacing between successive block requests of one file-level
    /// operation. An NFS client walks a file one 8 KB read RPC at a time,
    /// so a whole-file read reaches the server as a paced train, not an
    /// instantaneous burst — and trains from different clients interleave,
    /// which is what makes hot blocks from different files alternate in
    /// the request stream (§1.1). Sync-daemon write bursts are *not*
    /// paced (the update daemon queues all dirty buffers at once).
    pub request_pacing: SimDuration,
    /// Use incremental rearrangement (evict/copy only day-over-day
    /// differences) instead of the paper's full clean-and-recopy cycle.
    pub incremental_rearrange: bool,
    /// Online (continuous) rearrangement: every `period`, if the driver
    /// is idle, incrementally re-place the hottest `n_blocks` from the
    /// counts gathered so far today — the intelligent-controller variant
    /// the paper sketches against Loge. `None` = the paper's
    /// overnight-only protocol.
    pub online: Option<OnlineConfig>,
    /// Unmeasured warm-up days run at construction, so measured days see
    /// a steady-state buffer cache rather than a cold one (the paper
    /// measured a long-running production server).
    pub warmup_days: u32,
    /// Seeded fault injection (extension): install a [`FaultInjector`]
    /// with this plan on the disk once setup and warm-up finish, so the
    /// measured days run against a flaky device. `None` (the default)
    /// leaves the fault layer entirely out of the I/O path.
    pub fault_plan: Option<FaultPlan>,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Paper-shaped defaults for a disk and workload: organ-pipe
    /// placement, SCAN scheduling, reserved region sized like the paper
    /// (48 cylinders on the Toshiba-sized disk, 80 on the Fujitsu-sized
    /// one), 30 s sync, 2 min monitoring.
    pub fn new(disk: DiskModel, profile: WorkloadProfile) -> Self {
        let reserved = if disk.geometry.cylinders >= 1200 {
            80
        } else {
            48
        };
        let cache_blocks = profile.cache_blocks;
        ExperimentConfig {
            disk,
            reserved_cylinders: reserved,
            reserved_at_edge: false,
            profile,
            policy: PolicyKind::OrganPipe,
            scheduler: SchedulerKind::Scan,
            cache_blocks,
            sync_period: SimDuration::from_secs(30),
            monitor_period: SimDuration::from_mins(2),
            analyzer_capacity: None,
            analyzer_decay: None,
            request_pacing: SimDuration::from_millis(150),
            incremental_rearrange: false,
            online: None,
            warmup_days: 1,
            fault_plan: None,
            seed: 0x5eed,
        }
    }
}

/// Online rearrangement parameters (see `ExperimentConfig::online`).
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// How often to attempt an online step.
    pub period: SimDuration,
    /// Hot-list size to keep placed.
    pub n_blocks: usize,
}

/// Overnight gap between measured days (7am–10pm measured, then 9 hours
/// of quiet during which the arranger runs). Public so the array
/// harness advances its clock by exactly the same gap.
pub const OVERNIGHT: SimDuration = SimDuration::from_hours(9);

/// The assembled simulated file server.
pub struct Experiment {
    config: ExperimentConfig,
    driver: AdaptiveDriver,
    fs: FileSystem,
    workload: WorkloadState,
    daemon: RearrangementDaemon,
    clock: SimTime,
    day_index: u64,
    /// Blocks currently placed in the reserved area.
    placed: u32,
    /// When set, every submitted request is also logged (relative to the
    /// current day's start) for trace-driven replay.
    trace: Option<(SimTime, abr_workload::TraceLog)>,
    /// Online-rearrangement movement cost of the last day.
    last_online_io: crate::arranger::RearrangeReport,
    /// Overnight rearrangement passes that failed outright (the day was
    /// skipped and the previous placement kept).
    rearrange_failures: u64,
    /// The error that failed the most recent overnight pass, if any.
    last_rearrange_error: Option<DriverError>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("disk", &self.config.disk.name)
            .field("profile", &self.config.profile.name)
            .field("day", &self.day_index)
            .field("placed", &self.placed)
            .finish_non_exhaustive()
    }
}

impl Experiment {
    /// Build the whole stack: format the disk (with the reserved region
    /// if configured), attach the driver, create the file system, build
    /// the workload's file population (pushing its I/O through the driver
    /// before measurement starts), and zero all monitors.
    pub fn new(config: ExperimentConfig) -> Self {
        // Setup and warm-up are unmeasured: suppress span/event recording
        // so an active trace holds only measured-day traffic. (Wall-clock
        // timers keep running; they feed `wall.*` metrics, which never
        // enter traces.)
        let _unmeasured = abr_obs::trace_pause();
        let _wall = abr_obs::time_scope("setup");
        let model = config.disk.clone();
        let spb = 16; // 8 KB blocks
        let label = if config.reserved_cylinders > 0 {
            if config.reserved_at_edge {
                DiskLabel::rearranged_at_edge(model.geometry, config.reserved_cylinders, spb)
            } else {
                DiskLabel::rearranged_aligned(model.geometry, config.reserved_cylinders, spb)
            }
        } else {
            DiskLabel::whole_disk(model.geometry)
        };
        let driver_cfg = DriverConfig {
            block_size: 8192,
            scheduler: config.scheduler,
            monitor_capacity: 1 << 20,
            table_max_entries: 8192,
            ..DriverConfig::default()
        };
        let mut disk = Disk::new(model);
        AdaptiveDriver::format(&mut disk, &label, &driver_cfg);
        let mut driver = AdaptiveDriver::attach(disk, driver_cfg).expect("fresh format attaches");
        // The experiment loop consumes only completion timing.
        driver.set_deliver_read_data(false);

        let part_sectors = driver.label().partitions[0].n_sectors;
        let spc = driver.label().physical.sectors_per_cylinder();
        let fs_cfg = FsConfig {
            partition: 0,
            cache_blocks: config.cache_blocks,
            mode: MountMode::ReadWrite,
            write_through: config.profile.nfs_write_through,
            ..FsConfig::default()
        };
        let mut fs = FileSystem::newfs(fs_cfg, part_sectors, spc);

        // Build the file population; push its writes through the driver
        // synchronously (setup, unmeasured).
        let mut rng = SimRng::new(config.seed);
        let mut clock = SimTime::ZERO;
        let (workload, setup_reqs) =
            WorkloadState::setup(config.profile.clone(), &mut fs, &mut rng)
                .expect("workload population fits the file system");
        for req in setup_reqs {
            driver.submit(req, clock).expect("setup requests are valid");
            if driver.queue_len() > 64 {
                if let Some(t) = driver.next_completion() {
                    clock = t;
                    driver.complete_next(t);
                }
            }
        }
        while let Some(t) = driver.next_completion() {
            clock = t;
            driver.complete_next(t);
        }

        // The paper's *system* file system is served read-only.
        if !config.profile.is_mutating() {
            fs.remount(MountMode::ReadOnly);
        }

        // The rearrangement machinery.
        let analyzer: Box<dyn ReferenceAnalyzer> =
            match (config.analyzer_decay, config.analyzer_capacity) {
                (Some(decay), _) => Box::new(crate::analyzer::DecayingAnalyzer::new(decay)),
                (None, Some(cap)) => Box::new(BoundedAnalyzer::new(cap)),
                (None, None) => Box::new(FullAnalyzer::new()),
            };
        let arranger = BlockArranger::new(config.policy.make(fs.layout().interleave));
        let mut daemon = RearrangementDaemon::new(analyzer, arranger, config.monitor_period);
        daemon.set_incremental(config.incremental_rearrange);

        // Zero the monitors so day 1 starts clean.
        driver.ioctl(Ioctl::ReadStats, clock).expect("stats read");
        driver
            .ioctl(Ioctl::ReadRequestTable, clock)
            .expect("table read");

        let mut e = Experiment {
            config,
            driver,
            fs,
            workload,
            daemon,
            clock: clock + SimDuration::from_mins(10),
            day_index: 0,
            placed: 0,
            trace: None,
            last_online_io: crate::arranger::RearrangeReport::default(),
            rearrange_failures: 0,
            last_rearrange_error: None,
        };
        for _ in 0..e.config.warmup_days {
            e.run_day();
            e.rearrange_for_next_day(0);
        }
        e.day_index = 0;
        // Faults start once the population is built and the cache warm:
        // the measured days see the flaky device, the setup does not.
        if let Some(plan) = e.config.fault_plan {
            let rng = SimRng::new(e.config.seed).substream("faults");
            e.driver
                .disk_mut()
                .set_injector(Some(FaultInjector::new(plan, rng)));
        }
        e
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Blocks currently placed in the reserved area.
    pub fn placed(&self) -> u32 {
        self.placed
    }

    /// Direct access to the driver (inspection in tests and benches).
    pub fn driver(&self) -> &AdaptiveDriver {
        &self.driver
    }

    /// Direct access to the rearrangement daemon (inspection).
    pub fn daemon(&self) -> &RearrangementDaemon {
        &self.daemon
    }

    /// Fraction of today's (all, read) request counts that landed on
    /// currently-rearranged blocks — the coverage that determines how
    /// much of the day benefits. Call before `rearrange_for_next_day`.
    pub fn remap_coverage(&self) -> (f64, f64) {
        let spb = u64::from(self.driver.sectors_per_block());
        let cover = |dist: &[crate::analyzer::HotBlock]| {
            let mut hit = 0u64;
            let mut total = 0u64;
            for h in dist {
                total += h.count;
                let phys = self.driver.label().virtual_to_physical(h.block * spb);
                if self.driver.block_table().lookup(phys).is_some() {
                    hit += h.count;
                }
            }
            if total == 0 {
                0.0
            } else {
                hit as f64 / total as f64
            }
        };
        let (all, reads) = self.daemon.distributions();
        (cover(&all), cover(&reads))
    }

    /// Run one measured day while recording the block-level request
    /// stream (timestamps relative to the day start), for trace-driven
    /// replay (see the [`mod@crate::replay`] module).
    pub fn run_day_traced(&mut self) -> (DayMetrics, abr_workload::TraceLog) {
        self.trace = Some((self.clock, abr_workload::TraceLog::new()));
        let metrics = self.run_day();
        let (_, log) = self.trace.take().expect("set above");
        (metrics, log)
    }

    /// Log a request into the active trace, if tracing.
    fn trace_submit(&mut self, req: &abr_driver::IoRequest, at: SimTime) {
        if let Some((day_start, log)) = &mut self.trace {
            log.push(abr_workload::TraceEvent::of(
                req,
                (at - *day_start).as_micros(),
            ));
        }
    }

    /// Run one measured day of workload and return its metrics.
    pub fn run_day(&mut self) -> DayMetrics {
        let _t = abr_obs::time_scope("event_loop");
        let day_start = self.clock;
        let day_end = day_start + self.config.profile.day_length;
        let mut next_sync = day_start + self.config.sync_period;
        let mut next_monitor = day_start + self.config.monitor_period;
        let mut next_online = self
            .config
            .online
            .map(|o| day_start + o.period)
            .unwrap_or(SimTime::MAX);
        let mut online_io = crate::arranger::RearrangeReport::default();
        let (mut op_at, mut op) = self.workload.next_op(day_start, &self.fs);
        // Requests from file-level ops, paced out like NFS read/write RPC
        // trains (see `ExperimentConfig::request_pacing`). Trains from
        // different operations overlap, so a time-ordered queue merges
        // them.
        let mut pending: abr_sim::EventQueue<abr_driver::IoRequest> = abr_sim::EventQueue::new();

        loop {
            let next_completion = self.driver.next_completion().unwrap_or(SimTime::MAX);
            let next_pending = pending.peek_time().unwrap_or(SimTime::MAX);
            let t = op_at
                .min(next_sync)
                .min(next_monitor)
                .min(next_completion)
                .min(next_pending)
                .min(next_online);
            if t > day_end && pending.is_empty() {
                break;
            }
            if t == next_completion {
                self.driver.complete_next(t);
            } else if t == next_online {
                let online = self.config.online.expect("tick only when configured");
                // Keep the freshest counts, then re-place if idle.
                self.daemon.collect(&mut self.driver, t);
                if self.driver.is_idle() && self.driver.layout().is_some() {
                    // A failed step (faulty device) just skips this tick;
                    // the placement on disk stays consistent either way.
                    if let Ok(report) =
                        self.daemon
                            .rearrange_online(&mut self.driver, online.n_blocks, t)
                    {
                        online_io.io_ops += report.io_ops;
                        online_io.busy += report.busy;
                    }
                    self.placed = self.driver.block_table().len() as u32;
                }
                next_online = t + online.period;
            } else if t == next_pending {
                let (_, r) = pending.pop().expect("non-empty");
                self.trace_submit(&r, t);
                self.driver.submit(r, t).expect("workload request valid");
            } else if t == op_at {
                let reqs = self.workload.apply(op, &mut self.fs);
                let pace = self.config.request_pacing;
                for (i, r) in reqs.into_iter().enumerate() {
                    pending.schedule(t + pace * i as u64, r);
                }
                let (at, next) = self.workload.next_op(t, &self.fs);
                // New operations stop at the day boundary; only already-
                // issued request trains drain past it.
                op_at = if at > day_end { SimTime::MAX } else { at };
                op = next;
            } else if t == next_sync {
                for r in self.fs.sync() {
                    self.trace_submit(&r, t);
                    self.driver.submit(r, t).expect("sync request valid");
                }
                next_sync = t + self.config.sync_period;
            } else {
                self.daemon.collect(&mut self.driver, t);
                next_monitor = t + self.config.monitor_period;
            }
        }

        // Day end: drain outstanding requests, flush the cache, collect
        // the final monitor contents. Timed as its own phase: `_t` ends
        // the event-loop scope here so `wall.event_loop` and
        // `wall.day_end` partition the day cleanly.
        drop(_t);
        let _wall = abr_obs::time_scope("day_end");
        let mut t = day_end;
        while let Some(c) = self.driver.next_completion() {
            t = c;
            self.driver.complete_next(c);
        }
        for r in self.fs.sync() {
            self.trace_submit(&r, t);
            self.driver.submit(r, t).expect("final sync valid");
        }
        while let Some(c) = self.driver.next_completion() {
            t = c;
            self.driver.complete_next(c);
        }
        self.daemon.collect(&mut self.driver, t);

        // Daily metrics: performance stats (read-and-clear) plus the
        // daily block request distributions.
        let snapshot = match self.driver.ioctl(Ioctl::ReadStats, t).expect("stats read") {
            IoctlReply::Stats(s) => s,
            _ => unreachable!(),
        };
        let (all_dist, read_dist) = self.daemon.distributions();
        let metrics = DayMetrics::new(
            self.day_index,
            self.placed > 0,
            self.placed,
            &snapshot,
            &self.config.disk.seek,
            all_dist.iter().map(|h| h.count).collect(),
            read_dist.iter().map(|h| h.count).collect(),
        );
        self.clock = t.max(day_end);
        run_meter_add(self.clock - day_start);
        self.last_online_io = online_io;
        metrics
    }

    /// Movement I/O performed by online rearrangement during the last
    /// day (zero when `config.online` is `None`).
    pub fn last_online_io(&self) -> crate::arranger::RearrangeReport {
        self.last_online_io
    }

    /// End the day Vongsathorn & Carson-style: aggregate today's counts
    /// per cylinder and install the organ-pipe *cylinder* permutation for
    /// tomorrow (the baseline the paper's Related Work contrasts with).
    /// Requires a disk without a reserved area
    /// (`config.reserved_cylinders == 0`).
    pub fn shuffle_cylinders_for_next_day(&mut self) -> RearrangeReport {
        use abr_driver::cylmap::CylinderMap;
        let _t = abr_obs::time_scope("shuffle");
        let g = self.driver.label().physical;
        let spb = u64::from(self.driver.sectors_per_block());
        let (all, _) = self.daemon.distributions();
        let mut counts = vec![0u64; g.cylinders as usize];
        for h in &all {
            let cyl = g.cylinder_of((h.block * spb).min(g.total_sectors() - 1));
            counts[cyl as usize] += h.count;
        }
        let map = CylinderMap::organ_pipe(&counts);
        let reply = self
            .driver
            .ioctl(Ioctl::ShuffleCylinders { map }, self.clock)
            .expect("shuffle on idle plain disk");
        let report = match reply {
            IoctlReply::Moved { ops, busy } => RearrangeReport {
                blocks_placed: 0,
                blocks_failed: 0,
                io_ops: ops,
                busy,
            },
            _ => unreachable!(),
        };
        self.daemon.end_day_keep_placement();
        self.workload.advance_day();
        self.day_index += 1;
        self.clock += OVERNIGHT.max(report.busy + SimDuration::from_mins(1));
        self.driver
            .ioctl(Ioctl::ReadStats, self.clock)
            .expect("stats clear");
        report
    }

    /// Advance to the next day WITHOUT touching the reserved area —
    /// online mode carries its placement across days. Drift still
    /// applies and counts reset/decay per the analyzer.
    pub fn advance_day_keep_placement(&mut self) {
        self.daemon.end_day_keep_placement();
        self.workload.advance_day();
        self.day_index += 1;
        self.clock += OVERNIGHT;
    }

    /// End the day: use today's reference counts to place `n_blocks`
    /// blocks for tomorrow (0 = "off" day, reserved area emptied), apply
    /// workload drift, and advance the clock over the overnight gap.
    pub fn rearrange_for_next_day(&mut self, n_blocks: usize) -> RearrangeReport {
        let hot = self.daemon.hot_list(n_blocks);
        self.rearrange_for_next_day_with(&hot, n_blocks)
    }

    /// [`Experiment::rearrange_for_next_day`] with an externally supplied
    /// hot list — for selection-strategy ablations.
    pub fn rearrange_for_next_day_with(
        &mut self,
        hot: &[crate::analyzer::HotBlock],
        n_blocks: usize,
    ) -> RearrangeReport {
        let report = match self
            .daemon
            .end_day_with(&mut self.driver, hot, n_blocks, self.clock)
        {
            Ok(report) => report,
            Err(e) => {
                // The pass failed outright (power cut, degraded device,
                // table region unwritable after retries). The driver's
                // copy-then-commit ordering guarantees whatever placement
                // is on disk is consistent, so skip the day, keep the
                // placement, and carry on.
                self.rearrange_failures += 1;
                self.last_rearrange_error = Some(e);
                self.daemon.end_day_keep_placement();
                RearrangeReport::default()
            }
        };
        // Overnight power-cycle: a device cut mid-movement is back for
        // the morning (its media faults and quarantines persist).
        if let Some(inj) = self.driver.disk_mut().injector_mut() {
            if inj.is_dead() {
                inj.revive();
            }
        }
        self.placed = self.driver.block_table().len() as u32;
        self.workload.advance_day();
        self.day_index += 1;
        self.clock += OVERNIGHT.max(report.busy + SimDuration::from_mins(1));
        // The overnight block movement polluted the stats; clear them so
        // the next day starts clean.
        self.driver
            .ioctl(Ioctl::ReadStats, self.clock)
            .expect("stats clear");
        report
    }

    /// Overnight rearrangement passes that failed and were skipped.
    pub fn rearrange_failures(&self) -> u64 {
        self.rearrange_failures
    }

    /// The error that failed the most recent overnight pass, if any.
    pub fn last_rearrange_error(&self) -> Option<&DriverError> {
        self.last_rearrange_error.as_ref()
    }

    /// Convenience: run the paper's alternating protocol — `days` pairs
    /// of (off day, on day with `n_blocks` placed) — returning all
    /// metrics in order.
    pub fn run_on_off(&mut self, pairs: usize, n_blocks: usize) -> Vec<DayMetrics> {
        let mut out = Vec::with_capacity(pairs * 2);
        for _ in 0..pairs {
            // Off day.
            out.push(self.run_day());
            self.rearrange_for_next_day(n_blocks);
            // On day.
            out.push(self.run_day());
            self.rearrange_for_next_day(0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_disk::models;

    fn tiny_experiment_config() -> ExperimentConfig {
        let mut profile = WorkloadProfile::tiny_test();
        profile.day_length = SimDuration::from_mins(20);
        let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
        cfg.cache_blocks = 192;
        cfg.seed = 12345;
        cfg
    }

    /// A fast experiment: tiny workload on the small test disk.
    fn tiny_experiment() -> Experiment {
        Experiment::new(tiny_experiment_config())
    }

    #[test]
    fn day_produces_traffic_and_metrics() {
        let mut e = tiny_experiment();
        let m = e.run_day();
        assert!(m.all.n > 100, "day produced only {} requests", m.all.n);
        assert!(m.reads.n > 0);
        assert!(m.writes.n > 0, "sync bursts must produce writes");
        assert!(m.all.service_ms > 0.0);
        assert!(m.all.fcfs_seek_dist > 0.0);
        assert!(!m.service_cdf.is_empty());
        assert!(m.active_blocks() > 10);
    }

    #[test]
    fn rearrangement_reduces_seek_times() {
        // Rearrange enough blocks to absorb most of the tiny workload's
        // active set — with too small a hot set the head ping-pongs
        // between the reserved region and the rest, which is exactly why
        // the paper sizes the region to the skew knee (Fig. 8).
        let mut e = tiny_experiment();
        let off = e.run_day();
        e.rearrange_for_next_day(400);
        let on = e.run_day();
        assert!(on.rearranged);
        assert!(
            on.all.seek_ms < off.all.seek_ms,
            "on-day seek {} !< off-day {}",
            on.all.seek_ms,
            off.all.seek_ms
        );
        assert!(
            on.all.seek_dist < 0.6 * off.all.seek_dist,
            "seek distance {} not well below {}",
            on.all.seek_dist,
            off.all.seek_dist
        );
    }

    #[test]
    fn off_day_after_on_day_cleans_up() {
        let mut e = tiny_experiment();
        e.run_day();
        e.rearrange_for_next_day(40);
        e.run_day();
        e.rearrange_for_next_day(0);
        assert_eq!(e.placed(), 0);
        assert!(e.driver().block_table().is_empty());
        let m = e.run_day();
        assert!(!m.rearranged);
    }

    #[test]
    fn run_on_off_alternates() {
        let mut e = tiny_experiment();
        let days = e.run_on_off(2, 40);
        assert_eq!(days.len(), 4);
        assert!(!days[0].rearranged);
        assert!(days[1].rearranged);
        assert!(!days[2].rearranged);
        assert!(days[3].rearranged);
    }

    #[test]
    fn experiments_are_deterministic() {
        let run = || {
            let mut e = tiny_experiment();
            let m = e.run_day();
            (
                m.all.n,
                m.all.service_ms.to_bits(),
                m.all.seek_dist.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn online_mode_adapts_within_the_first_day() {
        let mut cfg_off = tiny_experiment_config();
        cfg_off.warmup_days = 0;
        let baseline = Experiment::new(cfg_off).run_day();

        let mut cfg_on = tiny_experiment_config();
        cfg_on.warmup_days = 0;
        cfg_on.analyzer_decay = Some(0.5);
        cfg_on.online = Some(crate::experiment::OnlineConfig {
            period: SimDuration::from_mins(3),
            n_blocks: 400,
        });
        let mut e = Experiment::new(cfg_on);
        let day1 = e.run_day();
        assert!(
            e.last_online_io().io_ops > 0,
            "online mode must move blocks"
        );
        assert!(e.placed() > 0);
        assert!(
            day1.all.seek_ms < baseline.all.seek_ms,
            "online day-1 {:.2} !< baseline {:.2}",
            day1.all.seek_ms,
            baseline.all.seek_ms
        );
        // Placement persists across days without overnight work.
        e.advance_day_keep_placement();
        assert!(e.placed() > 0);
        assert!(!e.driver().block_table().is_empty());
    }

    #[test]
    fn zero_fault_plan_is_bit_identical() {
        let run = |plan: Option<FaultPlan>| {
            let mut cfg = tiny_experiment_config();
            cfg.fault_plan = plan;
            let mut e = Experiment::new(cfg);
            let m = e.run_day();
            (
                m.all.n,
                m.all.service_ms.to_bits(),
                m.all.seek_dist.to_bits(),
            )
        };
        assert_eq!(run(None), run(Some(FaultPlan::none())));
    }

    #[test]
    fn faulty_device_degrades_gracefully() {
        let mut cfg = tiny_experiment_config();
        cfg.fault_plan = Some(FaultPlan {
            power_cut_after_ops: Some(4_000),
            ..FaultPlan::with_error_rate(1e-3)
        });
        let mut e = Experiment::new(cfg);
        let days = e.run_on_off(1, 40);
        assert_eq!(days.len(), 2);
        for d in &days {
            assert!(d.all.n > 100, "day still serves traffic: {}", d.all.n);
        }
        let faults: u64 = days
            .iter()
            .map(|d| d.faults.retries + d.faults.read_failures + d.faults.write_failures)
            .sum();
        assert!(faults > 0, "the seeded plan must actually fire");
        // The injector survives with its history; the experiment is
        // still standing regardless of what the power cut interrupted.
        assert!(e.driver().disk().injector().is_some());
    }

    #[test]
    fn experiment_is_send() {
        // The parallel benchmark engine moves whole experiments onto
        // worker threads; keep the stack `Send` end to end.
        fn assert_send<T: Send>() {}
        assert_send::<Experiment>();
        assert_send::<ExperimentConfig>();
    }

    #[test]
    fn run_meter_accumulates_per_thread() {
        run_meter_reset();
        let mut e = tiny_experiment();
        let before = run_meter();
        e.run_day();
        let after = run_meter();
        assert_eq!(after.days, before.days + 1);
        assert!(after.sim > before.sim);
        run_meter_reset();
        assert_eq!(run_meter(), RunMeter::default());
    }

    #[test]
    fn setup_and_warmup_are_not_traced() {
        abr_obs::trace_start(abr_obs::DEFAULT_TRACE_CAPACITY);
        let _e = tiny_experiment();
        let buf = abr_obs::trace_take().expect("tracing was started");
        assert!(
            buf.events.is_empty(),
            "setup/warmup leaked {} events into the trace",
            buf.events.len()
        );
        assert_eq!(buf.dropped, 0);
    }

    #[test]
    fn spans_reconcile_with_day_metrics() {
        use abr_obs::{ObsEvent, RearrangePhase};
        abr_obs::trace_start(abr_obs::DEFAULT_TRACE_CAPACITY);
        let mut e = tiny_experiment();
        let m = e.run_day();
        e.rearrange_for_next_day(40);
        let buf = abr_obs::trace_take().expect("tracing was started");
        assert_eq!(buf.dropped, 0);

        let spans: Vec<&abr_obs::RequestSpan> = buf
            .events
            .iter()
            .filter_map(|ev| match ev {
                ObsEvent::Request(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len() as u64, m.all.n, "one span per measured request");

        // Per-phase means reconcile with the day's DirMetrics: both
        // sides hold exact integer-microsecond sums and divide the same
        // way, so they agree to float round-off. (Fault-free day, so
        // every span's breakdown covers its whole service time.)
        let n = spans.len() as f64;
        let mean_ms = |sum_us: u64| sum_us as f64 / n / 1_000.0;
        let service: u64 = spans.iter().map(|s| s.service_us()).sum();
        let waiting: u64 = spans.iter().map(|s| s.waiting_us()).sum();
        let rotation: u64 = spans.iter().map(|s| s.rotation_us).sum();
        let transfer: u64 = spans.iter().map(|s| s.transfer_us).sum();
        for (name, got, want) in [
            ("service", mean_ms(service), m.all.service_ms),
            ("waiting", mean_ms(waiting), m.all.waiting_ms),
            ("rotation", mean_ms(rotation), m.all.rotation_ms),
            ("transfer", mean_ms(transfer), m.all.transfer_ms),
        ] {
            assert!(
                (got - want).abs() < 1e-9,
                "{name}: spans say {got} ms, DirMetrics say {want} ms"
            );
        }
        assert!(spans.iter().all(|s| s.retries == 0 && s.error.is_none()));

        // The overnight pass traced one rearrange start/stop pair, and
        // the movement ioctls it issued account for its reported I/O.
        let starts = buf
            .events
            .iter()
            .filter(|ev| {
                matches!(
                    ev,
                    ObsEvent::Rearrange {
                        phase: RearrangePhase::Start,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(starts, 1);
        let stop = buf
            .events
            .iter()
            .find_map(|ev| match ev {
                ObsEvent::Rearrange {
                    phase: RearrangePhase::Stop,
                    placed,
                    io_ops,
                    ..
                } => Some((*placed, *io_ops)),
                _ => None,
            })
            .expect("successful pass records a stop event");
        assert!(stop.0 > 0, "blocks were placed");
        let move_ops: u32 = buf
            .events
            .iter()
            .filter_map(|ev| match ev {
                ObsEvent::Move { ops, .. } => Some(*ops),
                _ => None,
            })
            .sum();
        assert_eq!(move_ops, stop.1, "move events account for the pass's I/O");
    }

    #[test]
    fn clock_advances_across_days() {
        let mut e = tiny_experiment();
        let c0 = e.clock;
        e.run_day();
        e.rearrange_for_next_day(10);
        assert!(e.clock > c0 + SimDuration::from_hours(9));
        assert_eq!(e.day_index, 1);
    }
}
