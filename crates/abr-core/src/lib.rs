//! # abr-core — adaptive block rearrangement
//!
//! The paper's contribution (Akyürek & Salem, *Adaptive Block
//! Rearrangement*, ICDE 1993): estimate block reference frequencies by
//! monitoring the request stream, and periodically copy the hottest
//! blocks into a reserved cylinder group near the middle of the disk,
//! placed by the organ-pipe heuristic.
//!
//! * [`analyzer`] — the *reference stream analyzer* (§4.2): exact
//!   counting, plus the bounded-memory variant with a replacement
//!   heuristic (after [Salem 92, Salem 93]).
//! * [`placement`] — the three placement policies of §4.2: organ-pipe,
//!   interleaved, and serial.
//! * [`arranger`] — the *block arranger*: turns a hot list and a policy
//!   into `DKIOCCLEAN` + `DKIOCBCOPY` calls against the driver.
//! * [`daemon`] — the rearrangement daemon: periodic request-table reads
//!   (every 2 minutes in the paper) feeding the analyzer, and the daily
//!   rearrangement cycle.
//! * [`experiment`] — the measurement harness reproducing the paper's
//!   experimental method: multi-day on/off runs on a simulated file
//!   server, with per-day metrics matching the paper's tables.
//! * [`metrics`] — per-day and per-run metric types.
//! * [`mod@replay`] — trace-driven evaluation (the companion ICDE 1993
//!   paper's methodology): record a day's block-level stream, replay it
//!   against differently-configured drivers with zero workload variance.
//! * [`recovery`] — windowed I/O budgets for background recovery work
//!   (array rebuild and scrub), applying the same bounded-moves-per-
//!   window discipline the arranger uses for block copies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod arranger;
pub mod daemon;
pub mod experiment;
pub mod metrics;
pub mod placement;
pub mod recovery;
pub mod replay;

pub use analyzer::{BoundedAnalyzer, DecayingAnalyzer, FullAnalyzer, HotBlock, ReferenceAnalyzer};
pub use arranger::BlockArranger;
pub use daemon::RearrangementDaemon;
pub use experiment::{
    run_meter, run_meter_add, run_meter_reset, Experiment, ExperimentConfig, RunMeter, OVERNIGHT,
};
pub use metrics::{DayMetrics, DirMetrics};
pub use placement::{Interleaved, OrganPipe, PlacementPolicy, PolicyKind, Serial, SlotMap};
pub use recovery::{IoBudget, MaintenanceConfig};
pub use replay::{replay, ReplayConfig};
