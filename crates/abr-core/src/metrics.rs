//! Per-day experiment metrics, in the shape of the paper's tables.
//!
//! All seek *times* are computed by pushing the measured seek-*distance*
//! distributions through the disk's Table 1 seek curve — exactly the
//! paper's method ("All table entries are measured values except for seek
//! times. These were computed using the measured seek distance
//! distribution and the seek time functions shown in Table 1").

use abr_disk::SeekCurve;
use abr_driver::monitor::{DirStats, FaultStats, PerfSnapshot};
use serde::{Deserialize, Serialize};

/// Metrics for one request direction (or all requests combined) over one
/// day — one column of Tables 3, 8 and 9.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DirMetrics {
    /// Requests measured.
    pub n: u64,
    /// Mean seek distance in arrival order with no rearrangement
    /// (cylinders) — the FCFS baseline.
    pub fcfs_seek_dist: f64,
    /// Mean seek distance in scheduled order (cylinders).
    pub seek_dist: f64,
    /// Percentage of zero-length seeks (scheduled order).
    pub zero_seek_pct: f64,
    /// FCFS baseline mean seek time (ms), through the seek curve.
    pub fcfs_seek_ms: f64,
    /// Mean seek time (ms), through the seek curve.
    pub seek_ms: f64,
    /// Mean service time (ms), measured.
    pub service_ms: f64,
    /// Mean queue waiting time (ms), measured.
    pub waiting_ms: f64,
    /// Mean rotational latency (ms), measured (Table 10).
    pub rotation_ms: f64,
    /// Mean transfer + fixed overhead (ms), measured (Table 10).
    pub transfer_ms: f64,
    /// Fraction of dispatches whose target lay inside the reserved area.
    pub reserved_frac: f64,
}

impl DirMetrics {
    /// Extract from the driver's per-direction statistics using the
    /// disk's seek curve. A direction with no measured requests yields
    /// all-zero metrics (not NaN), so day records always serialize.
    pub fn from_stats(stats: &DirStats, curve: &SeekCurve) -> Self {
        if stats.service.count() == 0 && stats.arrival_seek.count() == 0 {
            return DirMetrics {
                n: 0,
                fcfs_seek_dist: 0.0,
                seek_dist: 0.0,
                zero_seek_pct: 0.0,
                fcfs_seek_ms: 0.0,
                seek_ms: 0.0,
                service_ms: 0.0,
                waiting_ms: 0.0,
                rotation_ms: 0.0,
                transfer_ms: 0.0,
                reserved_frac: 0.0,
            };
        }
        let z = |x: f64| if x.is_nan() { 0.0 } else { x };
        DirMetrics {
            n: stats.service.count(),
            fcfs_seek_dist: z(stats.arrival_seek.mean()),
            seek_dist: z(stats.sched_seek.mean()),
            zero_seek_pct: z(stats.sched_seek.fraction_of(0) * 100.0),
            fcfs_seek_ms: z(stats.arrival_seek.mean_by(|d| curve.time_ms(d))),
            seek_ms: z(stats.sched_seek.mean_by(|d| curve.time_ms(d))),
            service_ms: z(stats.service.mean_ms()),
            waiting_ms: z(stats.queueing.mean_ms()),
            rotation_ms: z(stats.rotation.mean_ms()),
            transfer_ms: z(stats.transfer.mean_ms()),
            reserved_frac: if stats.sched_seek.count() == 0 {
                0.0
            } else {
                stats.reserved_dispatches as f64 / stats.sched_seek.count() as f64
            },
        }
    }

    /// Percentage reduction of mean seek time relative to the FCFS /
    /// no-rearrangement baseline (Table 7, Figure 8).
    pub fn seek_time_reduction_pct(&self) -> f64 {
        (1.0 - self.seek_ms / self.fcfs_seek_ms) * 100.0
    }

    /// Percentage reduction of mean seek distance relative to the FCFS /
    /// no-rearrangement baseline (Figure 8).
    pub fn seek_dist_reduction_pct(&self) -> f64 {
        (1.0 - self.seek_dist / self.fcfs_seek_dist) * 100.0
    }
}

/// Everything measured in one experiment day.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DayMetrics {
    /// Day index within the run.
    pub day: u64,
    /// Whether blocks were rearranged *during* this day (i.e. placed at
    /// the end of the previous day).
    pub rearranged: bool,
    /// How many blocks were in the reserved area this day.
    pub n_rearranged: u32,
    /// All requests.
    pub all: DirMetrics,
    /// Read requests only.
    pub reads: DirMetrics,
    /// Write requests only.
    pub writes: DirMetrics,
    /// Service-time CDF over all requests: `(ms, cumulative fraction)`
    /// points (Figures 4 and 6).
    pub service_cdf: Vec<(f64, f64)>,
    /// Per-block request counts, descending (Figures 5 and 7), all
    /// requests.
    pub block_counts: Vec<u64>,
    /// Per-block request counts, descending, reads only.
    pub block_counts_reads: Vec<u64>,
    /// Error-path counters for the day (all zero on a healthy device;
    /// absent in records written before fault injection existed).
    #[serde(default)]
    pub faults: FaultStats,
}

impl DayMetrics {
    /// Build from a performance snapshot plus daily request
    /// distributions.
    pub fn new(
        day: u64,
        rearranged: bool,
        n_rearranged: u32,
        snapshot: &PerfSnapshot,
        curve: &SeekCurve,
        block_counts: Vec<u64>,
        block_counts_reads: Vec<u64>,
    ) -> Self {
        let all_stats = snapshot.all();
        DayMetrics {
            day,
            rearranged,
            n_rearranged,
            all: DirMetrics::from_stats(&all_stats, curve),
            reads: DirMetrics::from_stats(&snapshot.reads, curve),
            writes: DirMetrics::from_stats(&snapshot.writes, curve),
            service_cdf: all_stats
                .service
                .histogram()
                .cdf_points()
                .into_iter()
                .map(|(d, f)| (d.as_millis_f64(), f))
                .collect(),
            block_counts,
            block_counts_reads,
            faults: snapshot.faults,
        }
    }

    /// Fraction of all requests absorbed by the `k` hottest blocks
    /// (the §5.4 skew measure).
    pub fn top_k_share(&self, k: usize) -> f64 {
        let total: u64 = self.block_counts.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let top: u64 = self.block_counts.iter().take(k).sum();
        top as f64 / total as f64
    }

    /// Number of distinct blocks referenced this day.
    pub fn active_blocks(&self) -> usize {
        self.block_counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_disk::models;
    use abr_driver::monitor::PerfMonitor;
    use abr_driver::request::IoDir;
    use abr_sim::SimDuration;

    fn snapshot() -> PerfSnapshot {
        let mut p = PerfMonitor::new();
        // Two reads: one long FCFS arrival distance, short scheduled.
        p.record_arrival_seek(IoDir::Read, 200);
        p.record_arrival_seek(IoDir::Read, 300);
        p.record_dispatch(IoDir::Read, 0, SimDuration::from_millis(5), true);
        p.record_dispatch(IoDir::Read, 10, SimDuration::from_millis(15), false);
        p.record_completion(
            IoDir::Read,
            SimDuration::from_millis(20),
            SimDuration::from_millis(8),
            SimDuration::from_millis(10),
        );
        p.record_completion(
            IoDir::Read,
            SimDuration::from_millis(30),
            SimDuration::from_millis(6),
            SimDuration::from_millis(12),
        );
        p.snapshot()
    }

    #[test]
    fn dir_metrics_from_stats() {
        let curve = models::toshiba_mk156f().seek;
        let s = snapshot();
        let m = DirMetrics::from_stats(&s.reads, &curve);
        assert_eq!(m.n, 2);
        assert_eq!(m.fcfs_seek_dist, 250.0);
        assert_eq!(m.seek_dist, 5.0);
        assert_eq!(m.zero_seek_pct, 50.0);
        // Seek times through the curve.
        let expect_fcfs = (curve.time_ms(200) + curve.time_ms(300)) / 2.0;
        assert!((m.fcfs_seek_ms - expect_fcfs).abs() < 1e-9);
        let expect_sched = (curve.time_ms(0) + curve.time_ms(10)) / 2.0;
        assert!((m.seek_ms - expect_sched).abs() < 1e-9);
        assert_eq!(m.service_ms, 25.0);
        assert_eq!(m.waiting_ms, 10.0);
        assert_eq!(m.rotation_ms, 7.0);
        assert_eq!(m.transfer_ms, 11.0);
    }

    #[test]
    fn reductions_relative_to_fcfs() {
        let curve = models::toshiba_mk156f().seek;
        let s = snapshot();
        let m = DirMetrics::from_stats(&s.reads, &curve);
        assert!(m.seek_time_reduction_pct() > 50.0);
        assert!((m.seek_dist_reduction_pct() - 98.0).abs() < 0.1);
    }

    #[test]
    fn day_metrics_shares() {
        let curve = models::toshiba_mk156f().seek;
        let s = snapshot();
        let d = DayMetrics::new(0, true, 100, &s, &curve, vec![90, 5, 3, 1, 1], vec![50, 2]);
        assert!((d.top_k_share(1) - 0.9).abs() < 1e-12);
        assert_eq!(d.active_blocks(), 5);
        assert!(!d.service_cdf.is_empty());
        let last = d.service_cdf.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let curve = models::toshiba_mk156f().seek;
        let s = snapshot();
        let d = DayMetrics::new(3, false, 0, &s, &curve, vec![1], vec![1]);
        let json = serde_json::to_string(&d).unwrap();
        let back: DayMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.day, 3);
        assert!(!back.rearranged);
    }
}
