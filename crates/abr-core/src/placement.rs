//! Placement policies for the reserved region (§4.2, Figure 3).
//!
//! Given the hot list (blocks ranked by estimated reference frequency)
//! and the reserved area's slot geometry, a policy decides which slot
//! each block occupies:
//!
//! * [`OrganPipe`] — hottest blocks on the centre cylinder of the
//!   reserved region, next-hottest on the adjacent cylinders, alternating
//!   outward.
//! * [`Interleaved`] — like organ-pipe at the cylinder level, but chains
//!   of file-successive blocks are placed with the file system's
//!   interleave gap preserved, to keep the rotational optimization.
//! * [`Serial`] — the hot *set* is chosen by frequency, but blocks are
//!   laid out in ascending block-number order; frequencies do not affect
//!   position.

use crate::analyzer::HotBlock;
use abr_disk::Geometry;
use abr_driver::ReservedLayout;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Selectable policy kinds (for configs and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Organ-pipe placement.
    OrganPipe,
    /// Interleave-preserving placement.
    Interleaved,
    /// Ascending block-number placement.
    Serial,
}

impl PolicyKind {
    /// Instantiate the policy. `interleave` is the file system's gap in
    /// blocks (used by [`Interleaved`] only).
    pub fn make(self, interleave: u64) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::OrganPipe => Box::new(OrganPipe),
            PolicyKind::Interleaved => Box::new(Interleaved::new(interleave)),
            PolicyKind::Serial => Box::new(Serial),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::OrganPipe => "Organ-pipe",
            PolicyKind::Interleaved => "Interleaved",
            PolicyKind::Serial => "Serial",
        }
    }

    /// All three, in the paper's comparison order.
    pub fn all() -> [PolicyKind; 3] {
        [
            PolicyKind::OrganPipe,
            PolicyKind::Interleaved,
            PolicyKind::Serial,
        ]
    }
}

/// The reserved area's slots, organized for placement decisions:
/// cylinders in organ-pipe fill order (centre cylinder first, then
/// alternating adjacent cylinders outward), each cylinder's slots in
/// ascending sector order.
#[derive(Debug, Clone)]
pub struct SlotMap {
    /// `cylinders[i]` = slots of the i-th cylinder in fill order.
    cylinders: Vec<Vec<u32>>,
    n_slots: u32,
}

impl SlotMap {
    /// Build from the driver's reserved layout and the disk geometry.
    pub fn new(layout: &ReservedLayout, geometry: &Geometry) -> Self {
        let mut by_cyl: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for slot in 0..layout.n_slots {
            by_cyl
                .entry(layout.slot_cylinder(geometry, slot))
                .or_default()
                .push(slot);
        }
        let center = geometry.cylinder_of(layout.start_sector + layout.total_sectors / 2);
        let mut cyls: Vec<u32> = by_cyl.keys().copied().collect();
        // Organ-pipe cylinder order: by distance from centre, lower
        // cylinder first on ties.
        cyls.sort_by_key(|&c| (c.abs_diff(center), c));
        let cylinders = cyls
            .into_iter()
            .map(|c| {
                let mut slots = by_cyl.remove(&c).expect("present");
                slots.sort_unstable();
                slots
            })
            .collect();
        SlotMap {
            cylinders,
            n_slots: layout.n_slots,
        }
    }

    /// Total slots.
    pub fn n_slots(&self) -> u32 {
        self.n_slots
    }

    /// Cylinders in fill order.
    pub fn cylinders(&self) -> &[Vec<u32>] {
        &self.cylinders
    }

    /// All slots in organ-pipe fill order (flattened).
    pub fn fill_order(&self) -> impl Iterator<Item = u32> + '_ {
        self.cylinders.iter().flatten().copied()
    }
}

/// A placement policy: assign hot blocks to reserved slots.
///
/// Policies are `Send` so a whole [`crate::Experiment`] can run on a
/// worker thread of the parallel benchmark engine.
pub trait PlacementPolicy: Send {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Assign blocks to slots. `hot` is ranked descending by count; at
    /// most `slots.n_slots()` entries are placed. Returns
    /// `(virtual block, slot)` pairs; every slot appears at most once.
    fn place(&self, hot: &[HotBlock], slots: &SlotMap) -> Vec<(u64, u32)>;
}

/// Organ-pipe placement: rank order straight into organ-pipe slot order.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrganPipe;

impl PlacementPolicy for OrganPipe {
    fn name(&self) -> &'static str {
        "Organ-pipe"
    }

    fn place(&self, hot: &[HotBlock], slots: &SlotMap) -> Vec<(u64, u32)> {
        hot.iter()
            .map(|h| h.block)
            .zip(slots.fill_order())
            .collect()
    }
}

/// Serial placement: the hottest `n_slots` blocks, in ascending block
/// order, into slots in ascending slot order (i.e. ascending sector
/// order, ignoring frequencies).
#[derive(Debug, Clone, Copy, Default)]
pub struct Serial;

impl PlacementPolicy for Serial {
    fn name(&self) -> &'static str {
        "Serial"
    }

    fn place(&self, hot: &[HotBlock], slots: &SlotMap) -> Vec<(u64, u32)> {
        let take = (slots.n_slots() as usize).min(hot.len());
        let mut blocks: Vec<u64> = hot[..take].iter().map(|h| h.block).collect();
        blocks.sort_unstable();
        let mut slot_ids: Vec<u32> = slots.fill_order().collect();
        slot_ids.sort_unstable();
        blocks.into_iter().zip(slot_ids).collect()
    }
}

/// Interleave-preserving placement (§4.2):
///
/// "The block arranger starts by choosing the hottest block and placing
/// it in the center cylinder. It then determines whether the hottest
/// block has a successor in the hot block list. If so, that block is
/// placed in the center cylinder, separated from the first block by the
/// interleaving factor. ... A chain of successors is followed either
/// until a successor cannot be placed or until a block is found to have
/// no successor. At that point, the block arranger selects the hottest
/// remaining block and attempts to begin a new chain. Cylinders are
/// filled in the same order used by the organ-pipe policy."
///
/// Block `Y` is the *successor* of `X` if `Y = X + interleave + 1` (the
/// file system places consecutive file blocks that far apart) and `Y`'s
/// frequency is *close* to `X`'s — at least 50 % of it ("the 50% figure
/// was chosen arbitrarily", says the paper, and we keep it).
#[derive(Debug, Clone, Copy)]
pub struct Interleaved {
    gap: u64,
}

impl Interleaved {
    /// Policy preserving a file-system interleave gap of `interleave`
    /// blocks (successive file blocks are `interleave + 1` apart).
    pub fn new(interleave: u64) -> Self {
        Interleaved {
            gap: interleave + 1,
        }
    }
}

impl PlacementPolicy for Interleaved {
    fn name(&self) -> &'static str {
        "Interleaved"
    }

    fn place(&self, hot: &[HotBlock], slots: &SlotMap) -> Vec<(u64, u32)> {
        let counts: BTreeMap<u64, u64> = hot.iter().map(|h| (h.block, h.count)).collect();
        let mut placed: BTreeMap<u64, u32> = BTreeMap::new();
        let mut todo: std::collections::VecDeque<HotBlock> = hot.iter().copied().collect();

        for cyl_slots in slots.cylinders() {
            // Free positions within this cylinder (index into cyl_slots).
            let mut free: Vec<bool> = vec![true; cyl_slots.len()];
            let mut n_free = cyl_slots.len();
            'fill: while n_free > 0 {
                // Hottest unplaced block starts a chain.
                let head = loop {
                    match todo.pop_front() {
                        Some(h) if !placed.contains_key(&h.block) => break h,
                        Some(_) => continue,
                        None => break 'fill,
                    }
                };
                // Place the head at the first free position.
                let mut pos = free.iter().position(|&f| f).expect("n_free > 0");
                placed.insert(head.block, cyl_slots[pos]);
                free[pos] = false;
                n_free -= 1;
                // Follow the successor chain with the interleave gap.
                let mut cur = head;
                loop {
                    let succ_block = cur.block + self.gap;
                    let Some(&succ_count) = counts.get(&succ_block) else {
                        break; // no successor in the hot list
                    };
                    // "Close" frequency: at least 50% of the predecessor's.
                    if succ_count * 2 < cur.count || placed.contains_key(&succ_block) {
                        break;
                    }
                    let want = pos + self.gap as usize;
                    if want >= cyl_slots.len() || !free[want] {
                        break; // successor cannot be placed
                    }
                    placed.insert(succ_block, cyl_slots[want]);
                    free[want] = false;
                    n_free -= 1;
                    pos = want;
                    cur = HotBlock {
                        block: succ_block,
                        count: succ_count,
                    };
                }
            }
        }
        // Deterministic output order: by original rank.
        hot.iter()
            .filter_map(|h| placed.get(&h.block).map(|&s| (h.block, s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_disk::{models, DiskLabel};

    fn slot_map() -> (SlotMap, Geometry) {
        let g = models::toshiba_mk156f().geometry;
        let label = DiskLabel::rearranged(g, 48);
        let layout = ReservedLayout::for_label(&label, 8192, 1020).unwrap();
        (SlotMap::new(&layout, &g), g)
    }

    fn hot(n: usize) -> Vec<HotBlock> {
        // Descending counts; block numbers deliberately scattered.
        (0..n)
            .map(|i| HotBlock {
                block: (i as u64 * 37) % 5000,
                count: (n - i) as u64 * 10,
            })
            .collect()
    }

    fn assert_valid(assign: &[(u64, u32)], slots: &SlotMap) {
        let mut seen_slots = std::collections::HashSet::new();
        let mut seen_blocks = std::collections::HashSet::new();
        for &(b, s) in assign {
            assert!(s < slots.n_slots());
            assert!(seen_slots.insert(s), "slot {s} assigned twice");
            assert!(seen_blocks.insert(b), "block {b} placed twice");
        }
    }

    #[test]
    fn slot_map_covers_all_slots() {
        let (sm, _) = slot_map();
        let total: usize = sm.cylinders().iter().map(|c| c.len()).sum();
        assert_eq!(total, sm.n_slots() as usize);
        let mut all: Vec<u32> = sm.fill_order().collect();
        all.sort_unstable();
        assert_eq!(all, (0..sm.n_slots()).collect::<Vec<_>>());
    }

    #[test]
    fn slot_map_cylinder_order_is_center_out() {
        let (sm, g) = slot_map();
        let label = DiskLabel::rearranged(g, 48);
        let layout = ReservedLayout::for_label(&label, 8192, 1020).unwrap();
        let center = g.cylinder_of(layout.start_sector + layout.total_sectors / 2);
        let mut prev_dist = 0;
        for cyl_slots in sm.cylinders() {
            let cyl = layout.slot_cylinder(&g, cyl_slots[0]);
            let d = cyl.abs_diff(center);
            assert!(d >= prev_dist);
            prev_dist = d;
        }
    }

    #[test]
    fn organ_pipe_hottest_in_center() {
        let (sm, _) = slot_map();
        let hot = hot(100);
        let assign = OrganPipe.place(&hot, &sm);
        assert_eq!(assign.len(), 100);
        assert_valid(&assign, &sm);
        // The hottest block got the first fill-order slot (centre
        // cylinder).
        let first_slot = sm.fill_order().next().unwrap();
        assert_eq!(assign[0], (hot[0].block, first_slot));
    }

    #[test]
    fn organ_pipe_truncates_to_slots() {
        let (sm, _) = slot_map();
        let n = sm.n_slots() as usize + 500;
        let hot: Vec<HotBlock> = (0..n)
            .map(|i| HotBlock {
                block: i as u64,
                count: (n - i) as u64,
            })
            .collect();
        let assign = OrganPipe.place(&hot, &sm);
        assert_eq!(assign.len(), sm.n_slots() as usize);
        assert_valid(&assign, &sm);
    }

    #[test]
    fn serial_orders_by_block_number() {
        let (sm, _) = slot_map();
        let hot = hot(50);
        let assign = Serial.place(&hot, &sm);
        assert_eq!(assign.len(), 50);
        assert_valid(&assign, &sm);
        let mut sorted = assign.clone();
        sorted.sort_by_key(|&(b, _)| b);
        // Ascending block -> ascending slot.
        for w in sorted.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn interleaved_places_chains_with_gap() {
        let (sm, _) = slot_map();
        // Gap = 2 (interleave 1). A chain: blocks 100, 102, 104 with
        // close frequencies, plus unrelated hot blocks.
        let hot = vec![
            HotBlock {
                block: 100,
                count: 100,
            },
            HotBlock {
                block: 102,
                count: 90,
            },
            HotBlock {
                block: 104,
                count: 80,
            },
            HotBlock {
                block: 9000,
                count: 70,
            },
        ];
        let assign = Interleaved::new(1).place(&hot, &sm);
        assert_valid(&assign, &sm);
        let find = |b: u64| assign.iter().find(|&&(x, _)| x == b).map(|&(_, s)| s);
        let (s100, s102, s104) = (find(100).unwrap(), find(102).unwrap(), find(104).unwrap());
        // Chain members are gap slots apart in the same cylinder's
        // ascending slot order.
        assert_eq!(s102, s100 + 2);
        assert_eq!(s104, s102 + 2);
        // The unrelated block filled one of the gap holes.
        let s9000 = find(9000).unwrap();
        assert!(s9000 == s100 + 1 || s9000 == s100 + 3);
    }

    #[test]
    fn interleaved_breaks_chain_on_cold_successor() {
        let (sm, _) = slot_map();
        // 102's count (40) is less than half of 100's (100): not "close",
        // chain must break.
        let hot = vec![
            HotBlock {
                block: 100,
                count: 100,
            },
            HotBlock {
                block: 102,
                count: 40,
            },
        ];
        let assign = Interleaved::new(1).place(&hot, &sm);
        let find = |b: u64| assign.iter().find(|&&(x, _)| x == b).map(|&(_, s)| s);
        // 102 starts its own chain at the next free position, not at
        // head+2.
        assert_eq!(find(102).unwrap(), find(100).unwrap() + 1);
    }

    #[test]
    fn interleaved_places_everything_organ_pipe_would() {
        let (sm, _) = slot_map();
        let hot = hot(300);
        let assign = Interleaved::new(1).place(&hot, &sm);
        assert_eq!(assign.len(), 300, "no hot block may be dropped");
        assert_valid(&assign, &sm);
    }

    #[test]
    fn paper_figure_3_example() {
        // Figure 3: reserved area of 3 cylinders x 4 blocks, interleave
        // factor 1. We mimic with a synthetic slot map.
        let g = models::tiny_test_disk().geometry; // 64 sectors/cylinder
        let label = DiskLabel::rearranged_aligned(g, 3, 8);
        // block size 4096 (8 sectors): 8 slots/cylinder; close enough to
        // exercise the structure. Use a layout with table=1 block.
        let layout = ReservedLayout::for_label(&label, 4096, 8).unwrap();
        let sm = SlotMap::new(&layout, &g);
        assert!(sm.cylinders().len() >= 3);

        let hot = vec![
            HotBlock {
                block: 10,
                count: 20,
            },
            HotBlock {
                block: 12,
                count: 15,
            }, // successor of 10 (gap 2)
            HotBlock {
                block: 40,
                count: 12,
            },
            HotBlock {
                block: 42,
                count: 3,
            }, // NOT close to 40 (3 < 6)
        ];
        let op = OrganPipe.place(&hot, &sm);
        let il = Interleaved::new(1).place(&hot, &sm);
        let se = Serial.place(&hot, &sm);
        assert_eq!(op.len(), 4);
        assert_eq!(il.len(), 4);
        assert_eq!(se.len(), 4);
        // Serial: ascending block order = ascending slots.
        let se_map: std::collections::HashMap<u64, u32> = se.into_iter().collect();
        assert!(se_map[&10] < se_map[&12]);
        assert!(se_map[&12] < se_map[&40]);
        assert!(se_map[&40] < se_map[&42]);
        // Interleaved: the chain 10 -> 12 keeps the gap; 40 is not close
        // to 42 (3 < 12/2), so 40 starts a fresh chain in the first gap
        // hole and 42 independently takes the next free position.
        let il_map: std::collections::HashMap<u64, u32> = il.into_iter().collect();
        assert_eq!(il_map[&12], il_map[&10] + 2);
        assert_eq!(il_map[&40], il_map[&10] + 1);
        assert_eq!(il_map[&42], il_map[&10] + 3);
    }

    #[test]
    fn interleaved_chain_breaks_at_cylinder_edge() {
        // A long chain cannot spill past the end of a cylinder: the rest
        // of the chain restarts as new heads in later cylinders.
        let (sm, _) = slot_map();
        let per_cyl = sm.cylinders()[0].len(); // 21 on the Toshiba
        let chain_len = per_cyl; // gap 2 -> needs 2*per_cyl slots: must break
        let hot: Vec<HotBlock> = (0..chain_len as u64)
            .map(|i| HotBlock {
                block: 100 + i * 2,
                count: 1000 - i, // every successor is "close"
            })
            .collect();
        let assign = Interleaved::new(1).place(&hot, &sm);
        assert_eq!(assign.len(), chain_len, "all blocks still placed");
        assert_valid(&assign, &sm);
        // The chain's gap-2 spacing holds only while it fits: the first
        // few placed blocks are 2 apart.
        let find = |b: u64| assign.iter().find(|&&(x, _)| x == b).map(|&(_, s)| s);
        assert_eq!(find(102).unwrap(), find(100).unwrap() + 2);
        // But not every pair can be (the cylinder ran out): at least one
        // successor had to start fresh.
        let broken = (0..chain_len as u64 - 1)
            .any(|i| find(100 + (i + 1) * 2).unwrap() != find(100 + i * 2).unwrap() + 2);
        assert!(
            broken,
            "a {chain_len}-block chain cannot fit one cylinder at gap 2"
        );
    }

    #[test]
    fn interleaved_equals_organ_pipe_without_successors() {
        // With no successor relationships in the hot list, the
        // interleaved policy degenerates to rank-order filling.
        let (sm, _) = slot_map();
        let hot: Vec<HotBlock> = (0..50u64)
            .map(|i| HotBlock {
                block: i * 101, // no two blocks are gap-2 apart
                count: 500 - i,
            })
            .collect();
        let il = Interleaved::new(1).place(&hot, &sm);
        let op = OrganPipe.place(&hot, &sm);
        assert_eq!(il, op);
    }

    #[test]
    fn policy_kind_factory() {
        let (sm, _) = slot_map();
        let hot = hot(10);
        for kind in PolicyKind::all() {
            let p = kind.make(1);
            assert_eq!(p.name(), kind.name());
            let a = p.place(&hot, &sm);
            assert_eq!(a.len(), 10);
            assert_valid(&a, &sm);
        }
    }

    #[test]
    fn empty_hot_list_places_nothing() {
        let (sm, _) = slot_map();
        for kind in PolicyKind::all() {
            assert!(kind.make(1).place(&[], &sm).is_empty());
        }
    }
}
