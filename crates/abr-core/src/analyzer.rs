//! The reference stream analyzer (§4.2).
//!
//! "The reference stream analyzer maintains a list of block
//! number/reference count pairs. ... the analyzer can guess at the
//! hottest blocks using a much smaller amount of memory ... by limiting
//! the size of the list. In case a block that does not appear on the list
//! is referenced, a replacement heuristic is used to make room for it."
//!
//! Two implementations:
//!
//! * [`FullAnalyzer`] — exact per-block counts (the configuration the
//!   paper ran: "a list of several thousand reference counts, enough so
//!   that replacement was rarely necessary").
//! * [`BoundedAnalyzer`] — a fixed-capacity list with the Space-Saving
//!   replacement heuristic, the space-efficient estimation the paper
//!   cites from [Salem 92, Salem 93]: when a new block arrives and the
//!   list is full, the minimum-count entry is replaced and the new entry
//!   inherits its count plus one (an upper bound with bounded error).

use std::collections::{BTreeMap, BTreeSet};

/// A block and its (estimated) reference count, as produced in a hot
/// list (descending count order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HotBlock {
    /// Virtual block number.
    pub block: u64,
    /// Reference count (exact or estimated, by analyzer).
    pub count: u64,
}

/// A reference stream analyzer: consumes block observations, produces a
/// ranked hot list.
///
/// Analyzers are `Send` so a whole [`crate::Experiment`] can run on a
/// worker thread of the parallel benchmark engine.
pub trait ReferenceAnalyzer: Send {
    /// Record `weight` references to `block`.
    fn observe(&mut self, block: u64, weight: u64);

    /// Record one reference to each block in `blocks` — the batched form
    /// the daemon's monitor drain uses, so a collection window costs one
    /// virtual call instead of one per record. Implementations with a
    /// dense layout override this with a single pass.
    fn observe_each(&mut self, blocks: &[u64]) {
        for &b in blocks {
            self.observe(b, 1);
        }
    }

    /// The `n` most-referenced blocks, descending by count (ties broken
    /// by ascending block number, deterministically).
    fn hot_list(&self, n: usize) -> Vec<HotBlock>;

    /// Number of blocks currently tracked.
    fn tracked(&self) -> usize;

    /// Total observations recorded since the last reset.
    fn total_observations(&self) -> u64;

    /// Forget everything (the daily cycle: each day's rearrangement uses
    /// that day's counts).
    fn reset(&mut self);
}

/// Exact counting with unbounded memory.
///
/// ```
/// use abr_core::analyzer::{FullAnalyzer, ReferenceAnalyzer};
///
/// let mut a = FullAnalyzer::new();
/// for block in [7, 7, 7, 3, 3, 9] {
///     a.observe(block, 1);
/// }
/// let hot = a.hot_list(2);
/// assert_eq!(hot[0].block, 7);
/// assert_eq!(hot[1].block, 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FullAnalyzer {
    /// Count per virtual block, indexed by block number. Virtual block
    /// numbers are bounded by the filesystem size (a few thousand), so
    /// counting is a single array increment; out-of-range blocks spill.
    dense: Vec<u64>,
    spill: BTreeMap<u64, u64>,
    tracked: usize,
    total: u64,
}

/// Blocks below this number count into the dense array.
const ANALYZER_DENSE_BLOCKS: u64 = 1 << 20;

impl FullAnalyzer {
    /// A fresh analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// All counts, descending (the full daily block request distribution
    /// — Figures 5 and 7 of the paper).
    pub fn distribution(&self) -> Vec<HotBlock> {
        self.hot_list(self.tracked)
    }

    /// The exact count for one block.
    pub fn count_of(&self, block: u64) -> u64 {
        if block < ANALYZER_DENSE_BLOCKS {
            self.dense.get(block as usize).copied().unwrap_or(0)
        } else {
            self.spill.get(&block).copied().unwrap_or(0)
        }
    }
}

/// Sort (block, count) pairs into canonical hot-list order and truncate.
fn ranked(mut v: Vec<HotBlock>, n: usize) -> Vec<HotBlock> {
    v.sort_by(|a, b| b.count.cmp(&a.count).then(a.block.cmp(&b.block)));
    v.truncate(n);
    v
}

impl ReferenceAnalyzer for FullAnalyzer {
    fn observe(&mut self, block: u64, weight: u64) {
        let cell = if block < ANALYZER_DENSE_BLOCKS {
            let idx = block as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, 0);
            }
            &mut self.dense[idx]
        } else {
            self.spill.entry(block).or_insert(0)
        };
        if *cell == 0 {
            self.tracked += 1;
        }
        *cell += weight;
        self.total += weight;
    }

    fn observe_each(&mut self, blocks: &[u64]) {
        // One pass, one bump of `total`: the whole collection window
        // lands with a single virtual dispatch.
        for &block in blocks {
            let cell = if block < ANALYZER_DENSE_BLOCKS {
                let idx = block as usize;
                if idx >= self.dense.len() {
                    self.dense.resize(idx + 1, 0);
                }
                &mut self.dense[idx]
            } else {
                self.spill.entry(block).or_insert(0)
            };
            if *cell == 0 {
                self.tracked += 1;
            }
            *cell += 1;
        }
        self.total += blocks.len() as u64;
    }

    fn hot_list(&self, n: usize) -> Vec<HotBlock> {
        let mut v = Vec::with_capacity(self.tracked);
        v.extend(
            self.dense
                .iter()
                .enumerate()
                .filter(|&(_, &count)| count > 0)
                .map(|(block, &count)| HotBlock {
                    block: block as u64,
                    count,
                }),
        );
        v.extend(
            self.spill
                .iter()
                .filter(|&(_, &count)| count > 0)
                .map(|(&block, &count)| HotBlock { block, count }),
        );
        ranked(v, n)
    }

    fn tracked(&self) -> usize {
        self.tracked
    }

    fn total_observations(&self) -> u64 {
        self.total
    }

    /// Resets in one pass over the dense array, keeping its allocation —
    /// the day-boundary batching the daily protocol relies on.
    fn reset(&mut self) {
        self.dense.fill(0);
        self.spill.clear();
        self.tracked = 0;
        self.total = 0;
    }
}

/// Fixed-capacity counting with the Space-Saving replacement heuristic.
#[derive(Debug, Clone)]
pub struct BoundedAnalyzer {
    capacity: usize,
    counts: BTreeMap<u64, u64>,
    /// (count, block) index for O(log n) minimum lookup.
    by_count: BTreeSet<(u64, u64)>,
    total: u64,
    replacements: u64,
}

impl BoundedAnalyzer {
    /// An analyzer tracking at most `capacity` blocks.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity analyzer");
        BoundedAnalyzer {
            capacity,
            counts: BTreeMap::new(),
            by_count: BTreeSet::new(),
            total: 0,
            replacements: 0,
        }
    }

    /// How many times the replacement heuristic fired (the paper sized
    /// its list "so that replacement was rarely necessary").
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl ReferenceAnalyzer for BoundedAnalyzer {
    fn observe(&mut self, block: u64, weight: u64) {
        self.total += weight;
        if let Some(c) = self.counts.get_mut(&block) {
            self.by_count.remove(&(*c, block));
            *c += weight;
            self.by_count.insert((*c, block));
            return;
        }
        let mut base = 0;
        if self.counts.len() >= self.capacity {
            // Replace the minimum-count entry; inherit its count (the
            // Space-Saving over-estimate guarantee).
            let &(min_count, victim) = self.by_count.iter().next().expect("non-empty");
            self.by_count.remove(&(min_count, victim));
            self.counts.remove(&victim);
            self.replacements += 1;
            base = min_count;
        }
        let c = base + weight;
        self.counts.insert(block, c);
        self.by_count.insert((c, block));
    }

    fn hot_list(&self, n: usize) -> Vec<HotBlock> {
        ranked(
            self.counts
                .iter()
                .map(|(&block, &count)| HotBlock { block, count })
                .collect(),
            n,
        )
    }

    fn tracked(&self) -> usize {
        self.counts.len()
    }

    fn total_observations(&self) -> u64 {
        self.total
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.by_count.clear();
        self.total = 0;
    }
}

/// Exponentially-decayed counting (extension).
///
/// The paper's daily protocol discards each day's counts after
/// rearranging ("block reference counts measured during one day were
/// used (at the end of the day) to rearrange blocks for the next day").
/// A decaying analyzer instead carries history: at each day boundary
/// ([`ReferenceAnalyzer::reset`]) every count is multiplied by `decay`
/// rather than cleared, so the hot list reflects an exponentially
/// weighted average of past days. More robust when one day's sample is
/// noisy; slower to adapt when the workload genuinely shifts — the
/// trade-off `ablate-decay` measures.
#[derive(Debug, Clone)]
pub struct DecayingAnalyzer {
    /// Decayed weight per virtual block (same dense-plus-spill layout as
    /// [`FullAnalyzer`]); zero means untracked.
    dense: Vec<f64>,
    spill: BTreeMap<u64, f64>,
    tracked: usize,
    decay: f64,
    total: u64,
}

impl DecayingAnalyzer {
    /// An analyzer whose counts are scaled by `decay` (in `(0, 1)`) at
    /// each reset. Entries that fall below 0.5 are dropped.
    ///
    /// # Panics
    /// Panics unless `0 < decay < 1`.
    pub fn new(decay: f64) -> Self {
        assert!(decay > 0.0 && decay < 1.0, "decay must be in (0,1)");
        DecayingAnalyzer {
            dense: Vec::new(),
            spill: BTreeMap::new(),
            tracked: 0,
            decay,
            total: 0,
        }
    }

    /// The configured decay factor.
    pub fn decay(&self) -> f64 {
        self.decay
    }
}

impl ReferenceAnalyzer for DecayingAnalyzer {
    fn observe(&mut self, block: u64, weight: u64) {
        let cell = if block < ANALYZER_DENSE_BLOCKS {
            let idx = block as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, 0.0);
            }
            &mut self.dense[idx]
        } else {
            self.spill.entry(block).or_insert(0.0)
        };
        if *cell == 0.0 {
            self.tracked += 1;
        }
        *cell += weight as f64;
        self.total += weight;
    }

    fn observe_each(&mut self, blocks: &[u64]) {
        for &block in blocks {
            let cell = if block < ANALYZER_DENSE_BLOCKS {
                let idx = block as usize;
                if idx >= self.dense.len() {
                    self.dense.resize(idx + 1, 0.0);
                }
                &mut self.dense[idx]
            } else {
                self.spill.entry(block).or_insert(0.0)
            };
            if *cell == 0.0 {
                self.tracked += 1;
            }
            *cell += 1.0;
        }
        self.total += blocks.len() as u64;
    }

    fn hot_list(&self, n: usize) -> Vec<HotBlock> {
        // Quantize the decayed weights (x1024 to keep fractional order)
        // so the common HotBlock type carries them.
        let mut v = Vec::with_capacity(self.tracked);
        v.extend(
            self.dense
                .iter()
                .enumerate()
                .filter(|&(_, &count)| count > 0.0)
                .map(|(block, &count)| HotBlock {
                    block: block as u64,
                    count: (count * 1024.0) as u64,
                }),
        );
        v.extend(
            self.spill
                .iter()
                .filter(|&(_, &count)| count > 0.0)
                .map(|(&block, &count)| HotBlock {
                    block,
                    count: (count * 1024.0) as u64,
                }),
        );
        ranked(v, n)
    }

    fn tracked(&self) -> usize {
        self.tracked
    }

    fn total_observations(&self) -> u64 {
        self.total
    }

    /// Decays rather than clears (see the type docs) — one pass over the
    /// dense array at the day boundary.
    fn reset(&mut self) {
        let decay = self.decay;
        let mut tracked = 0;
        for c in &mut self.dense {
            if *c == 0.0 {
                continue;
            }
            *c *= decay;
            if *c < 0.5 {
                *c = 0.0;
            } else {
                tracked += 1;
            }
        }
        self.spill.retain(|_, c| {
            *c *= decay;
            *c >= 0.5
        });
        self.tracked = tracked + self.spill.len();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_sim::dist::Zipf;
    use abr_sim::SimRng;

    #[test]
    fn full_analyzer_exact_counts() {
        let mut a = FullAnalyzer::new();
        for _ in 0..5 {
            a.observe(10, 1);
        }
        a.observe(20, 3);
        assert_eq!(a.count_of(10), 5);
        assert_eq!(a.count_of(20), 3);
        assert_eq!(a.count_of(99), 0);
        assert_eq!(a.total_observations(), 8);
        let hot = a.hot_list(10);
        assert_eq!(
            hot[0],
            HotBlock {
                block: 10,
                count: 5
            }
        );
        assert_eq!(
            hot[1],
            HotBlock {
                block: 20,
                count: 3
            }
        );
    }

    #[test]
    fn hot_list_tie_break_deterministic() {
        let mut a = FullAnalyzer::new();
        a.observe(30, 2);
        a.observe(10, 2);
        a.observe(20, 2);
        let hot = a.hot_list(3);
        assert_eq!(
            hot.iter().map(|h| h.block).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn reset_clears() {
        let mut a = FullAnalyzer::new();
        a.observe(1, 1);
        a.reset();
        assert_eq!(a.tracked(), 0);
        assert_eq!(a.total_observations(), 0);
        assert!(a.hot_list(5).is_empty());
    }

    #[test]
    fn bounded_tracks_up_to_capacity() {
        let mut a = BoundedAnalyzer::new(3);
        for b in 0..3 {
            a.observe(b, 1);
        }
        assert_eq!(a.tracked(), 3);
        assert_eq!(a.replacements(), 0);
        a.observe(99, 1);
        assert_eq!(a.tracked(), 3);
        assert_eq!(a.replacements(), 1);
    }

    #[test]
    fn bounded_never_loses_a_heavy_hitter() {
        // Space-Saving guarantee: any block with count > total/capacity is
        // tracked.
        let mut a = BoundedAnalyzer::new(10);
        let mut rng = SimRng::new(1);
        // Heavy: block 7 gets 30% of 10_000 observations.
        for i in 0..10_000u64 {
            if rng.chance(0.3) {
                a.observe(7, 1);
            } else {
                a.observe(1000 + i % 500, 1); // light noise
            }
        }
        let hot = a.hot_list(1);
        assert_eq!(hot[0].block, 7);
        // Estimated count is an over-estimate of the true count.
        assert!(hot[0].count >= 2_800);
    }

    #[test]
    fn bounded_estimates_match_exact_on_skewed_stream() {
        // The paper's claim: short lists still find the hot blocks under
        // skew. Compare top-20 sets from a 200-entry bounded analyzer and
        // the exact analyzer on a Zipf stream over 2000 blocks.
        let z = Zipf::new(2000, 1.4);
        let mut rng = SimRng::new(2);
        let mut exact = FullAnalyzer::new();
        let mut bounded = BoundedAnalyzer::new(200);
        for _ in 0..100_000 {
            let b = z.sample(&mut rng) as u64;
            exact.observe(b, 1);
            bounded.observe(b, 1);
        }
        let top_exact: Vec<u64> = exact.hot_list(20).iter().map(|h| h.block).collect();
        let top_bounded: Vec<u64> = bounded.hot_list(20).iter().map(|h| h.block).collect();
        let overlap = top_exact.iter().filter(|b| top_bounded.contains(b)).count();
        assert!(overlap >= 18, "only {overlap}/20 of true hot set found");
    }

    #[test]
    fn bounded_weighted_observations() {
        let mut a = BoundedAnalyzer::new(4);
        a.observe(1, 10);
        a.observe(2, 5);
        a.observe(1, 10);
        assert_eq!(a.hot_list(1)[0].count, 20);
        assert_eq!(a.total_observations(), 25);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        BoundedAnalyzer::new(0);
    }

    #[test]
    fn decaying_analyzer_carries_history() {
        let mut a = DecayingAnalyzer::new(0.5);
        a.observe(10, 8);
        a.reset(); // 10 -> 4
        a.observe(20, 5);
        let hot = a.hot_list(2);
        // Yesterday's block 10 (decayed to 4) still ranks below today's
        // 20 (5), but is present.
        assert_eq!(hot[0].block, 20);
        assert_eq!(hot[1].block, 10);
        assert_eq!(hot[1].count, 4 * 1024);
    }

    #[test]
    fn decaying_analyzer_eventually_forgets() {
        let mut a = DecayingAnalyzer::new(0.5);
        a.observe(10, 8);
        for _ in 0..5 {
            a.reset(); // 8 -> 4 -> 2 -> 1 -> 0.5 -> dropped
        }
        assert_eq!(a.tracked(), 0);
    }

    #[test]
    fn decaying_analyzer_smooths_noise() {
        // A steady block observed every day outranks a one-day spike.
        let mut a = DecayingAnalyzer::new(0.7);
        for _ in 0..5 {
            a.observe(1, 10);
            a.reset();
        }
        a.observe(1, 10);
        a.observe(99, 13); // today's noise spike
        let hot = a.hot_list(1);
        assert_eq!(hot[0].block, 1, "steady block must outrank the spike");
    }

    #[test]
    #[should_panic(expected = "decay must be in")]
    fn decaying_analyzer_rejects_bad_decay() {
        DecayingAnalyzer::new(1.0);
    }

    #[test]
    fn hot_list_truncates() {
        let mut a = FullAnalyzer::new();
        for b in 0..100 {
            a.observe(b, b + 1);
        }
        let hot = a.hot_list(5);
        assert_eq!(hot.len(), 5);
        assert_eq!(hot[0].block, 99);
    }
}
