//! Windowed I/O budgets for background recovery work.
//!
//! The adaptive arranger already rations its block moves (so many per
//! overnight pass); array-level recovery — rebuilding a replaced disk,
//! scrubbing for latent defects — needs the same discipline *during the
//! day*, where it contends with foreground requests. An [`IoBudget`]
//! grants at most `ops_per_window` member-disk operations per fixed
//! window of simulated time, so recovery traffic is amortized against
//! service the same way rearrangement moves are (the cost-oblivious
//! reallocation framing: bounded bytes moved per window, regardless of
//! how urgent recovery feels).
//!
//! The budget is pure sim-time arithmetic — no wall clock, no
//! randomness — so recovery schedules are byte-identical across host
//! thread counts like everything else in the pipeline.

use abr_sim::{SimDuration, SimTime};

/// A per-window allowance of recovery operations.
///
/// Windows are half-open intervals `[start + k·window, start + (k+1)·window)`
/// anchored at the first grant. Consuming never exceeds the window's
/// allowance; unused allowance does **not** carry over (recovery must
/// not burst after an idle stretch — that is exactly the latency spike
/// the budget exists to prevent).
#[derive(Debug, Clone)]
pub struct IoBudget {
    window: SimDuration,
    ops_per_window: u32,
    /// Start of the current window; `None` until the first grant.
    window_start: Option<SimTime>,
    used: u32,
    /// Windows closed so far (for reporting).
    windows: u64,
    /// Largest number of ops consumed in any closed window.
    peak_used: u32,
    total_used: u64,
}

impl IoBudget {
    /// A budget of `ops_per_window` operations per `window` of sim time.
    ///
    /// # Panics
    /// If the window is zero-length.
    pub fn new(window: SimDuration, ops_per_window: u32) -> Self {
        assert!(window > SimDuration::ZERO, "budget window must be positive");
        IoBudget {
            window,
            ops_per_window,
            window_start: None,
            used: 0,
            windows: 0,
            peak_used: 0,
            total_used: 0,
        }
    }

    /// The window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The per-window allowance.
    pub fn ops_per_window(&self) -> u32 {
        self.ops_per_window
    }

    /// Roll the window forward to cover `now` and return how many ops
    /// may still be issued in the current window.
    pub fn available(&mut self, now: SimTime) -> u32 {
        self.roll(now);
        self.ops_per_window - self.used
    }

    /// Record `n` operations issued at `now`.
    ///
    /// # Panics
    /// If `n` exceeds what [`IoBudget::available`] granted for `now` —
    /// overspending is a caller bug, not a runtime condition.
    pub fn consume(&mut self, now: SimTime, n: u32) {
        self.roll(now);
        assert!(
            self.used + n <= self.ops_per_window,
            "recovery budget overspent: {} + {n} > {}",
            self.used,
            self.ops_per_window
        );
        self.used += n;
        self.total_used += u64::from(n);
        self.peak_used = self.peak_used.max(self.used);
    }

    /// Ops consumed in the window covering `now`.
    pub fn used_this_window(&mut self, now: SimTime) -> u32 {
        self.roll(now);
        self.used
    }

    /// Windows closed so far (a window closes when a later grant or
    /// consume rolls past its end).
    pub fn windows_closed(&self) -> u64 {
        self.windows
    }

    /// The most ops consumed in any window so far (closed or current) —
    /// the "did rebuild stay within its budget" report figure.
    pub fn peak_used(&self) -> u32 {
        self.peak_used
    }

    /// Total ops consumed over the budget's lifetime.
    pub fn total_used(&self) -> u64 {
        self.total_used
    }

    fn roll(&mut self, now: SimTime) {
        match self.window_start {
            None => self.window_start = Some(now),
            Some(start) => {
                if now >= start + self.window {
                    // Close every fully elapsed window (idle gaps close
                    // many at once; their unused allowance evaporates).
                    let elapsed = now - start;
                    let k = elapsed.as_micros() / self.window.as_micros();
                    self.windows += k;
                    self.window_start = Some(start + self.window * k);
                    self.used = 0;
                }
            }
        }
    }
}

/// Background-maintenance knobs for a redundant array: how often the
/// maintenance tick fires and how much recovery I/O each window may
/// spend. One struct so experiment configs and benches stay one-liners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceConfig {
    /// How often the array runs its maintenance tick (replacement
    /// arrival checks, rebuild windows, scrub windows).
    pub period: SimDuration,
    /// Member-disk operations the rebuild engine may issue per window.
    pub rebuild_ops_per_window: u32,
    /// Redundancy groups the scrub pass may verify per *idle* window.
    pub scrub_groups_per_window: u32,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            period: SimDuration::from_secs(10),
            rebuild_ops_per_window: 64,
            scrub_groups_per_window: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn allowance_is_per_window_and_does_not_carry_over() {
        let mut b = IoBudget::new(SimDuration::from_micros(1_000), 4);
        assert_eq!(b.available(t(0)), 4);
        b.consume(t(0), 3);
        assert_eq!(b.available(t(500)), 1);
        b.consume(t(500), 1);
        assert_eq!(b.available(t(999)), 0);
        // New window: fresh allowance, nothing carried from the idle one.
        assert_eq!(b.available(t(1_000)), 4);
        // Skipping whole windows idle does not accumulate allowance.
        assert_eq!(b.available(t(10_000)), 4);
        assert_eq!(b.peak_used(), 4);
        assert_eq!(b.total_used(), 4);
    }

    #[test]
    fn windows_close_in_bulk_over_idle_gaps() {
        let mut b = IoBudget::new(SimDuration::from_micros(100), 2);
        b.consume(t(0), 1);
        assert_eq!(b.windows_closed(), 0);
        b.consume(t(1_050), 2);
        // 10 whole windows elapsed between the two consumes.
        assert_eq!(b.windows_closed(), 10);
        assert_eq!(b.used_this_window(t(1_060)), 2);
        assert_eq!(b.peak_used(), 2);
    }

    #[test]
    #[should_panic(expected = "overspent")]
    fn overspending_panics() {
        let mut b = IoBudget::new(SimDuration::from_micros(100), 2);
        b.consume(t(0), 3);
    }

    #[test]
    fn window_anchor_is_first_grant() {
        let mut b = IoBudget::new(SimDuration::from_micros(100), 1);
        assert_eq!(b.available(t(250)), 1);
        b.consume(t(250), 1);
        // Still the same window at 349, new one at 350.
        assert_eq!(b.available(t(349)), 0);
        assert_eq!(b.available(t(350)), 1);
    }

    #[test]
    fn maintenance_defaults_are_sane() {
        let m = MaintenanceConfig::default();
        assert!(m.period > SimDuration::ZERO);
        assert!(m.rebuild_ops_per_window > 0);
        assert!(m.scrub_groups_per_window > 0);
    }
}
