//! Trace-driven evaluation.
//!
//! The companion ICDE 1993 paper (*Adaptive Block Rearrangement*, the
//! conference version of this system) evaluated the technique with
//! trace-driven simulation before the driver was built. This module
//! provides that methodology: record the block-level request stream of a
//! simulated day ([`crate::experiment::Experiment::run_day_traced`]),
//! then [`replay()`](crate::replay::replay) the identical stream against differently-configured
//! drivers — placement policies, schedulers, reserved sizes — with
//! *zero* workload variance between configurations.

use crate::analyzer::{FullAnalyzer, HotBlock, ReferenceAnalyzer};
use crate::arranger::BlockArranger;
use crate::metrics::DayMetrics;
use crate::placement::PolicyKind;
use abr_disk::{Disk, DiskLabel, DiskModel};
use abr_driver::{AdaptiveDriver, DriverConfig, Ioctl, IoctlReply, SchedulerKind};
use abr_sim::SimTime;
use abr_workload::TraceLog;

/// Configuration of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Disk model to replay against.
    pub disk: DiskModel,
    /// Reserved cylinders (0 = no rearrangement possible).
    pub reserved_cylinders: u32,
    /// Queueing policy.
    pub scheduler: SchedulerKind,
    /// Placement policy used when `n_blocks > 0`.
    pub policy: PolicyKind,
    /// Hottest blocks to place before the replay begins (from the
    /// trace's own reference counts — the paper's daily protocol, with
    /// yesterday == today because the stream is identical).
    pub n_blocks: usize,
}

impl ReplayConfig {
    /// Paper defaults for a disk: SCAN, organ-pipe, paper-sized reserved
    /// region, no blocks placed (caller sets `n_blocks`).
    pub fn new(disk: DiskModel) -> Self {
        let reserved = if disk.geometry.cylinders >= 1200 {
            80
        } else {
            48
        };
        ReplayConfig {
            disk,
            reserved_cylinders: reserved,
            scheduler: SchedulerKind::Scan,
            policy: PolicyKind::OrganPipe,
            n_blocks: 0,
        }
    }
}

/// Count block references in a trace (what the reference stream analyzer
/// would have seen).
pub fn trace_hot_list(trace: &TraceLog, sectors_per_block: u32) -> Vec<HotBlock> {
    let mut analyzer = FullAnalyzer::new();
    for e in trace.events() {
        analyzer.observe(e.sector / u64::from(sectors_per_block), 1);
    }
    analyzer.distribution()
}

/// Replay a trace against a freshly formatted disk and return the
/// measured day metrics. The replayed stream is *identical* across calls
/// regardless of configuration, so metric differences are attributable
/// purely to the configuration.
///
/// # Panics
/// Panics if the trace addresses fall outside the configured virtual
/// disk (a trace recorded on a disk with a different reserved size may
/// not fit).
pub fn replay(trace: &TraceLog, config: &ReplayConfig) -> DayMetrics {
    let label = if config.reserved_cylinders > 0 {
        DiskLabel::rearranged_aligned(config.disk.geometry, config.reserved_cylinders, 16)
    } else {
        DiskLabel::whole_disk(config.disk.geometry)
    };
    let driver_cfg = DriverConfig {
        block_size: 8192,
        scheduler: config.scheduler,
        monitor_capacity: 1 << 21,
        table_max_entries: 8192,
        ..DriverConfig::default()
    };
    let mut disk = Disk::new(config.disk.clone());
    AdaptiveDriver::format(&mut disk, &label, &driver_cfg);
    let mut driver = AdaptiveDriver::attach(disk, driver_cfg).expect("fresh format attaches");
    // Replay consumes only the measured statistics, never read data.
    driver.set_deliver_read_data(false);

    // Pre-place the trace's hottest blocks, exactly as the arranger
    // would overnight.
    if config.n_blocks > 0 {
        let hot = trace_hot_list(trace, driver.sectors_per_block());
        let arranger = BlockArranger::new(config.policy.make(1));
        arranger
            .rearrange(&mut driver, &hot, config.n_blocks, SimTime::ZERO)
            .expect("placement on idle driver");
        // Placement I/O must not pollute the replay's measurements.
        driver
            .ioctl(Ioctl::ReadStats, SimTime::ZERO)
            .expect("stats clear");
    }

    // The trace starts at t=0; offset everything past the placement
    // phase (a day boundary in spirit).
    let base = 200_000_000_000u64; // 200,000 s: far past any placement I/O
    let mut last = SimTime::ZERO;
    for e in trace.events() {
        let at = SimTime::from_micros(base + e.at_us);
        // Drain completions due before this arrival.
        while let Some(c) = driver.next_completion() {
            if c > at {
                break;
            }
            driver.complete_next(c);
        }
        driver
            .submit(e.to_request(), at)
            .expect("trace request valid");
        last = at;
    }
    while let Some(c) = driver.next_completion() {
        last = c;
        driver.complete_next(c);
    }

    let snapshot = match driver.ioctl(Ioctl::ReadStats, last).expect("stats read") {
        IoctlReply::Stats(s) => s,
        _ => unreachable!(),
    };
    // Block distributions from the trace itself.
    let hot = trace_hot_list(trace, driver.sectors_per_block());
    let spb = u64::from(driver.sectors_per_block());
    let reads: Vec<u64> = {
        let mut a = FullAnalyzer::new();
        for e in trace.events() {
            if e.dir.is_read() {
                a.observe(e.sector / spb, 1);
            }
        }
        a.distribution().iter().map(|h| h.count).collect()
    };
    DayMetrics::new(
        0,
        config.n_blocks > 0,
        config.n_blocks as u32,
        &snapshot,
        &config.disk.seek,
        hot.iter().map(|h| h.count).collect(),
        reads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};
    use abr_disk::models;
    use abr_sim::SimDuration;
    use abr_workload::WorkloadProfile;

    fn record_short_day() -> TraceLog {
        let mut profile = WorkloadProfile::tiny_test();
        profile.day_length = SimDuration::from_mins(20);
        let mut cfg = ExperimentConfig::new(models::toshiba_mk156f(), profile);
        cfg.seed = 0x77AC3;
        let mut e = Experiment::new(cfg);
        let (_, trace) = e.run_day_traced();
        trace
    }

    #[test]
    fn recorded_trace_is_nonempty_and_ordered() {
        let trace = record_short_day();
        assert!(trace.len() > 200, "trace has {} events", trace.len());
        for w in trace.events().windows(2) {
            assert!(w[0].at_us <= w[1].at_us);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = record_short_day();
        let cfg = ReplayConfig::new(models::toshiba_mk156f());
        let a = replay(&trace, &cfg);
        let b = replay(&trace, &cfg);
        assert_eq!(a.all.n, b.all.n);
        assert_eq!(a.all.service_ms.to_bits(), b.all.service_ms.to_bits());
    }

    #[test]
    fn replay_request_count_matches_trace() {
        let trace = record_short_day();
        let cfg = ReplayConfig::new(models::toshiba_mk156f());
        let m = replay(&trace, &cfg);
        assert_eq!(m.all.n as usize, trace.len());
    }

    #[test]
    fn rearranged_replay_beats_plain_replay() {
        let trace = record_short_day();
        let mut cfg = ReplayConfig::new(models::toshiba_mk156f());
        let off = replay(&trace, &cfg);
        cfg.n_blocks = 400;
        let on = replay(&trace, &cfg);
        // Identical stream: the difference is purely the rearrangement.
        // With today's own hot list (perfect prediction) the cut is
        // large.
        assert!(
            on.all.seek_ms < 0.5 * off.all.seek_ms,
            "seek {:.2} !<< {:.2}",
            on.all.seek_ms,
            off.all.seek_ms
        );
    }

    #[test]
    fn trace_hot_list_counts() {
        let mut log = TraceLog::new();
        for i in 0..5 {
            log.push(abr_workload::TraceEvent {
                at_us: i * 1000,
                dir: abr_disk::disk::IoDir::Read,
                partition: 0,
                sector: 32, // block 2
                n_sectors: 16,
            });
        }
        let hot = trace_hot_list(&log, 16);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0], HotBlock { block: 2, count: 5 });
    }
}
