//! The block arranger (§4.2).
//!
//! "Another process, which is called the block arranger, selects the most
//! frequently requested blocks for rearrangement and controls their
//! placement in the reserved area."
//!
//! The arranger takes a hot list and a placement policy, and drives the
//! driver's block-movement ioctls: `DKIOCCLEAN` to empty the reserved
//! area (copying dirty blocks home), then one `DKIOCBCOPY` per selected
//! block.

use crate::analyzer::HotBlock;
use crate::placement::{PlacementPolicy, SlotMap};
use abr_disk::fault::DiskFault;
use abr_driver::{AdaptiveDriver, DriverError, Ioctl, IoctlReply};
use abr_sim::{SimDuration, SimTime};

/// Outcome of one rearrangement cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RearrangeReport {
    /// Blocks copied into the reserved area.
    pub blocks_placed: u32,
    /// Blocks skipped because their placement failed (bad media, a
    /// quarantined slot, ...). The pass as a whole still succeeds; the
    /// block simply stays at its original address for another day.
    pub blocks_failed: u32,
    /// Disk operations issued (clean + copies + table writes).
    pub io_ops: u32,
    /// Total simulated time the movement took.
    pub busy: SimDuration,
}

/// Whether a block-movement failure is local to that block (skip it and
/// carry on) rather than fatal to the whole pass. Power loss kills the
/// device; everything else — bad media, quarantined or occupied slots,
/// an exhausted retry budget — only affects the block being moved.
fn skippable(e: &DriverError) -> bool {
    match e {
        DriverError::SlotQuarantined | DriverError::SlotOccupied => true,
        DriverError::Disk { fault, .. } => *fault != DiskFault::PowerLoss,
        _ => false,
    }
}

/// Drives block movement against a driver.
pub struct BlockArranger {
    policy: Box<dyn PlacementPolicy>,
}

impl std::fmt::Debug for BlockArranger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockArranger")
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl BlockArranger {
    /// An arranger using `policy`.
    pub fn new(policy: Box<dyn PlacementPolicy>) -> Self {
        BlockArranger { policy }
    }

    /// The policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Empty the reserved area only (an "off" day, or shutdown).
    pub fn clean(
        &self,
        driver: &mut AdaptiveDriver,
        now: SimTime,
    ) -> Result<RearrangeReport, DriverError> {
        let mut report = RearrangeReport::default();
        match driver.ioctl(Ioctl::Clean, now)? {
            IoctlReply::Moved { ops, busy } => {
                report.io_ops += ops;
                report.busy += busy;
            }
            _ => unreachable!("Clean replies Moved"),
        }
        Ok(report)
    }

    /// One full rearrangement cycle: clean the reserved area, then place
    /// the hottest `n_blocks` blocks of `hot` according to the policy.
    ///
    /// Requires an idle driver (the paper's arranger ran once a day, in
    /// quiet hours).
    pub fn rearrange(
        &self,
        driver: &mut AdaptiveDriver,
        hot: &[HotBlock],
        n_blocks: usize,
        now: SimTime,
    ) -> Result<RearrangeReport, DriverError> {
        let mut report = self.clean(driver, now)?;
        let layout = *driver.layout().ok_or(DriverError::NotRearranged)?;
        let slots = SlotMap::new(&layout, &driver.label().physical);
        let take = n_blocks.min(hot.len());
        let assignment = self.policy.place(&hot[..take], &slots);
        for (block, slot) in assignment {
            let at = now + report.busy;
            match driver.ioctl(Ioctl::BCopy { block, slot }, at) {
                Ok(IoctlReply::Moved { ops, busy }) => {
                    report.io_ops += ops;
                    report.busy += busy;
                    report.blocks_placed += 1;
                }
                Ok(_) => unreachable!("BCopy replies Moved"),
                Err(e) if skippable(&e) => report.blocks_failed += 1,
                Err(e) => return Err(e),
            }
        }
        // Sanitize builds verify the whole pass left the redirect map a
        // bijection, including after partially failed placements.
        #[cfg(feature = "sanitize")]
        driver.block_table().assert_bijection();
        Ok(report)
    }

    /// Incremental rearrangement — the extension the paper's §1.1 points
    /// at ("smaller granularity also facilitates incremental
    /// rearrangement"). Instead of emptying the reserved area and
    /// recopying everything, compute the new assignment, keep blocks that
    /// are already in their target slot, evict only the rest, then copy
    /// in only the newcomers/movers. When consecutive days' hot sets
    /// overlap heavily (the common case — that is why the technique works
    /// at all), this cuts the overnight I/O severalfold.
    pub fn rearrange_incremental(
        &self,
        driver: &mut AdaptiveDriver,
        hot: &[HotBlock],
        n_blocks: usize,
        now: SimTime,
    ) -> Result<RearrangeReport, DriverError> {
        let layout = *driver.layout().ok_or(DriverError::NotRearranged)?;
        let slots = SlotMap::new(&layout, &driver.label().physical);
        let take = n_blocks.min(hot.len()).min(slots.n_slots() as usize);

        // Blocks we want resident, in rank order, keyed by original
        // physical sector (the block table's key space).
        let spb = u64::from(driver.sectors_per_block());
        let label = driver.label().clone();
        let wanted: Vec<(u64, u64)> = hot[..take]
            .iter()
            .map(|h| (h.block, label.virtual_to_physical(h.block * spb)))
            .collect();
        let wanted_set: std::collections::BTreeSet<u64> =
            wanted.iter().map(|&(_, orig)| orig).collect();

        let mut report = RearrangeReport::default();
        // Evict residents that cooled off. Residents that are still hot
        // stay exactly where they are — a slot anywhere in the reserved
        // region is already within a few cylinders of ideal, so we trade
        // a slightly imperfect organ-pipe shape for most of the overnight
        // I/O.
        for (orig, _) in driver.block_table().entries_by_slot() {
            if wanted_set.contains(&orig) {
                continue;
            }
            let at = now + report.busy;
            match driver.ioctl(Ioctl::BEvict { orig }, at) {
                Ok(IoctlReply::Moved { ops, busy }) => {
                    report.io_ops += ops;
                    report.busy += busy;
                }
                Ok(_) => unreachable!("BEvict replies Moved"),
                // A failed eviction leaves the entry resident and its
                // slot unavailable; the newcomer that wanted the slot
                // will be skipped below.
                Err(e) if skippable(&e) => report.blocks_failed += 1,
                Err(e) => return Err(e),
            }
        }
        // Newcomers take the freed slots in organ-pipe fill order
        // (hottest newcomer gets the most central free slot).
        let quarantined: std::collections::BTreeSet<u32> = driver.quarantined_slots().collect();
        let free_slots: Vec<u32> = slots
            .fill_order()
            .filter(|&s| driver.block_table().occupant(s).is_none() && !quarantined.contains(&s))
            .collect();
        let mut free_slots = free_slots.into_iter();
        for (block, orig) in wanted {
            if driver.block_table().lookup(orig).is_some() {
                report.blocks_placed += 1; // already resident, untouched
                continue;
            }
            // Failed evictions (above) or quarantined slots can leave
            // fewer free slots than newcomers; the leftovers just stay
            // at their original addresses.
            let Some(slot) = free_slots.next() else {
                report.blocks_failed += 1;
                continue;
            };
            let at = now + report.busy;
            match driver.ioctl(Ioctl::BCopy { block, slot }, at) {
                Ok(IoctlReply::Moved { ops, busy }) => {
                    report.io_ops += ops;
                    report.busy += busy;
                    report.blocks_placed += 1;
                }
                Ok(_) => unreachable!("BCopy replies Moved"),
                Err(e) if skippable(&e) => report.blocks_failed += 1,
                Err(e) => return Err(e),
            }
        }
        // Sanitize builds verify the whole pass left the redirect map a
        // bijection, including after partially failed placements.
        #[cfg(feature = "sanitize")]
        driver.block_table().assert_bijection();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PolicyKind;
    use abr_disk::{models, Disk, DiskLabel};
    use abr_driver::request::IoRequest;
    use abr_driver::{DriverConfig, SchedulerKind};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn config() -> DriverConfig {
        DriverConfig {
            block_size: 4096,
            scheduler: SchedulerKind::Scan,
            monitor_capacity: 1000,
            table_max_entries: 64,
            ..DriverConfig::default()
        }
    }

    fn driver() -> AdaptiveDriver {
        let model = models::tiny_test_disk();
        let label = DiskLabel::rearranged_aligned(model.geometry, 10, 8);
        let mut disk = Disk::new(model);
        AdaptiveDriver::format(&mut disk, &label, &config());
        AdaptiveDriver::attach(disk, config()).unwrap()
    }

    fn hot(n: u64) -> Vec<HotBlock> {
        (0..n)
            .map(|i| HotBlock {
                block: i * 3,
                count: (n - i) * 10,
            })
            .collect()
    }

    #[test]
    fn rearrange_places_requested_count() {
        let mut d = driver();
        let a = BlockArranger::new(PolicyKind::OrganPipe.make(1));
        let report = a.rearrange(&mut d, &hot(20), 10, t(0)).unwrap();
        assert_eq!(report.blocks_placed, 10);
        assert_eq!(d.block_table().len(), 10);
        // 3 ops per copy + nothing to clean.
        assert_eq!(report.io_ops, 30);
        assert!(report.busy > SimDuration::ZERO);
    }

    #[test]
    fn rearrange_replaces_previous_day() {
        let mut d = driver();
        let a = BlockArranger::new(PolicyKind::OrganPipe.make(1));
        a.rearrange(&mut d, &hot(20), 10, t(0)).unwrap();
        // Next day: a different hot set.
        let new_hot: Vec<HotBlock> = (100..105)
            .map(|b| HotBlock {
                block: b,
                count: 50,
            })
            .collect();
        let report = a.rearrange(&mut d, &new_hot, 5, t(100_000_000)).unwrap();
        assert_eq!(report.blocks_placed, 5);
        assert_eq!(d.block_table().len(), 5);
        // All old entries were cleaned out.
        for h in hot(20) {
            let spb = u64::from(d.sectors_per_block());
            let phys = d.label().virtual_to_physical(h.block * spb);
            assert!(d.block_table().lookup(phys).is_none());
        }
    }

    #[test]
    fn clean_empties_table() {
        let mut d = driver();
        let a = BlockArranger::new(PolicyKind::Serial.make(1));
        a.rearrange(&mut d, &hot(8), 8, t(0)).unwrap();
        let report = a.clean(&mut d, t(50_000_000)).unwrap();
        assert!(d.block_table().is_empty());
        // One table write per block cleaned (all clean, never written).
        assert_eq!(report.io_ops, 8);
    }

    #[test]
    fn rearrange_preserves_data() {
        let mut d = driver();
        // Write known data to the blocks that will move.
        let payload = bytes::Bytes::from(vec![0xAB; 4096]);
        d.submit(IoRequest::write(0, 0, 8, payload.clone()), t(0))
            .unwrap();
        d.drain();
        let a = BlockArranger::new(PolicyKind::OrganPipe.make(1));
        a.rearrange(&mut d, &[HotBlock { block: 0, count: 9 }], 1, t(1_000_000))
            .unwrap();
        d.submit(IoRequest::read(0, 0, 8), t(60_000_000)).unwrap();
        assert_eq!(d.drain()[0].data, payload);
        // And after moving home again.
        a.clean(&mut d, t(120_000_000)).unwrap();
        d.submit(IoRequest::read(0, 0, 8), t(180_000_000)).unwrap();
        assert_eq!(d.drain()[0].data, payload);
    }

    #[test]
    fn hot_list_shorter_than_request_is_fine() {
        let mut d = driver();
        let a = BlockArranger::new(PolicyKind::OrganPipe.make(1));
        let report = a.rearrange(&mut d, &hot(3), 100, t(0)).unwrap();
        assert_eq!(report.blocks_placed, 3);
    }

    #[test]
    fn incremental_skips_unchanged_blocks() {
        let mut d = driver();
        let a = BlockArranger::new(PolicyKind::OrganPipe.make(1));
        let day1 = hot(12);
        a.rearrange(&mut d, &day1, 12, t(0)).unwrap();

        // Day 2: same hot set, reordered ranks, one block swapped out.
        let mut day2 = day1.clone();
        day2.swap(0, 11);
        day2[5] = HotBlock {
            block: 500,
            count: day2[5].count,
        };
        let report = a
            .rearrange_incremental(&mut d, &day2, 12, t(100_000_000))
            .unwrap();
        assert_eq!(report.blocks_placed, 12);
        // Only the swapped-out block is evicted (1 table write, clean)
        // and the newcomer copied in (3 ops): 4 ops total, vs ~48 for a
        // full cycle.
        assert_eq!(report.io_ops, 4, "io_ops {}", report.io_ops);
        assert_eq!(d.block_table().len(), 12);
    }

    #[test]
    fn incremental_identical_hot_list_is_nearly_free() {
        let mut d = driver();
        let a = BlockArranger::new(PolicyKind::OrganPipe.make(1));
        let day = hot(10);
        a.rearrange(&mut d, &day, 10, t(0)).unwrap();
        let report = a
            .rearrange_incremental(&mut d, &day, 10, t(100_000_000))
            .unwrap();
        assert_eq!(report.blocks_placed, 10);
        assert_eq!(report.io_ops, 0, "no movement needed");
        assert_eq!(report.busy, SimDuration::ZERO);
    }

    #[test]
    fn incremental_from_empty_equals_full_placement() {
        let mut d = driver();
        let a = BlockArranger::new(PolicyKind::OrganPipe.make(1));
        let report = a.rearrange_incremental(&mut d, &hot(8), 8, t(0)).unwrap();
        assert_eq!(report.blocks_placed, 8);
        assert_eq!(d.block_table().len(), 8);
    }

    #[test]
    fn incremental_preserves_dirty_data() {
        use abr_driver::request::IoRequest;
        let mut d = driver();
        let a = BlockArranger::new(PolicyKind::OrganPipe.make(1));
        // Place block 3 (rank it hottest), write through the remap.
        let day1 = vec![
            HotBlock { block: 3, count: 9 },
            HotBlock { block: 6, count: 8 },
        ];
        a.rearrange(&mut d, &day1, 2, t(0)).unwrap();
        let v2 = bytes::Bytes::from(vec![0x77; 4096]);
        d.submit(IoRequest::write(0, 3 * 8, 8, v2.clone()), t(60_000_000))
            .unwrap();
        d.drain();
        // Day 2 drops block 3 from the hot set: incremental rearrangement
        // must write its dirty copy home.
        let day2 = vec![
            HotBlock { block: 6, count: 9 },
            HotBlock { block: 9, count: 8 },
        ];
        a.rearrange_incremental(&mut d, &day2, 2, t(120_000_000))
            .unwrap();
        d.submit(IoRequest::read(0, 3 * 8, 8), t(240_000_000))
            .unwrap();
        assert_eq!(d.drain()[0].data, v2);
    }

    #[test]
    fn rearrange_skips_bad_slots_and_places_the_rest() {
        use abr_disk::fault::{FaultInjector, FaultPlan};
        let mut d = driver();
        let layout = *d.layout().unwrap();
        let mut inj = FaultInjector::new(FaultPlan::none(), abr_sim::SimRng::new(1));
        inj.add_defect(layout.slot_sector(0));
        d.disk_mut().set_injector(Some(inj));

        let a = BlockArranger::new(PolicyKind::Serial.make(1));
        let report = a.rearrange(&mut d, &hot(5), 5, t(0)).unwrap();
        assert_eq!(report.blocks_placed + report.blocks_failed, 5);
        assert_eq!(report.blocks_failed, 1, "exactly the bad slot's block");
        assert_eq!(d.block_table().len(), 4);

        // An incremental pass routes around the quarantined slot and
        // places the block that failed, in a healthy slot.
        let report = a
            .rearrange_incremental(&mut d, &hot(5), 5, t(100_000_000))
            .unwrap();
        assert_eq!(report.blocks_placed, 5);
        assert_eq!(report.blocks_failed, 0);
        assert_eq!(d.block_table().len(), 5);
        assert!(d.block_table().occupant(0).is_none(), "slot 0 stays empty");
    }

    #[test]
    fn all_policies_work_through_arranger() {
        for kind in PolicyKind::all() {
            let mut d = driver();
            let a = BlockArranger::new(kind.make(1));
            let report = a.rearrange(&mut d, &hot(12), 12, t(0)).unwrap();
            assert_eq!(report.blocks_placed, 12, "{}", kind.name());
        }
    }
}
