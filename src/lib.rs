//! # abr — Adaptive Block Rearrangement
//!
//! A complete reproduction of *Adaptive Block Rearrangement* (Akyürek &
//! Salem, ICDE 1993 / UMIACS-TR-93-28.1): an adaptive disk device driver
//! that monitors the block request stream, estimates block reference
//! frequencies online, and periodically copies the hottest blocks into a
//! reserved group of cylinders near the middle of the disk to cut seek
//! times.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`sim`] — discrete-event simulation substrate (clock, events, RNG,
//!   distributions, histograms).
//! * [`disk`] — disk mechanism model with the paper's Toshiba MK156F and
//!   Fujitsu M2266 geometry and seek curves.
//! * [`driver`] — the adaptive device driver: strategy routine, block
//!   table, disk queue schedulers, ioctls, request/performance monitors.
//! * [`fs`] — FFS-lite file system (cylinder groups, rotational
//!   interleaving, buffer cache, periodic update daemon).
//! * [`workload`] — synthetic NFS file-server workloads replicating the
//!   paper's measured request-stream characteristics.
//! * [`core`] — the paper's contribution: reference stream analyzer,
//!   placement policies, block arranger, rearrangement daemon, experiment
//!   harness.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

#![forbid(unsafe_code)]

pub use abr_core as core;
pub use abr_disk as disk;
pub use abr_driver as driver;
pub use abr_fs as fs;
pub use abr_sim as sim;
pub use abr_workload as workload;
